//! Length-prefixed [`Value`] serialization for spill runs.
//!
//! The runtime's pipeline breakers (hash-join builds, distinct seen-sets)
//! and pending-source spools overflow to disk when their memory budget
//! trips.  What they write is a *run*: a sequence of records, each record
//! a short vector of [`Value`]s (a join row's key plus frames, a distinct
//! candidate, a spooled source row).  This module defines that on-disk
//! format and the [`RunWriter`]/[`RunReader`] pair that streams it.
//!
//! # Format
//!
//! Every number is little-endian and fixed-width.  A record is a `u32`
//! value count followed by that many values.  A value is a one-byte
//! variant tag followed by its payload:
//!
//! | tag | variant | payload |
//! |-----|---------|---------|
//! | 0 | `Null`   | — |
//! | 1 | `Bool`   | 1 byte (0/1) |
//! | 2 | `Int`    | 8 bytes (`i64`) |
//! | 3 | `Float`  | 8 bytes (`f64` bit pattern, NaN payloads preserved) |
//! | 4 | `Str`    | `u32` byte length + UTF-8 bytes |
//! | 5 | `Struct` | `u32` field count + per field (`u32` name length + name bytes + value) |
//! | 6 | `List`   | `u32` element count + elements |
//! | 7 | `Bag`    | `u32` element count + elements |
//!
//! Deserialization reconstructs exactly the value that was written —
//! floats round-trip bit-for-bit via [`f64::to_bits`], struct field order
//! is preserved — so a spilled row compares, hashes and displays exactly
//! like its in-memory original.  Sharing is *not* preserved: two clones of
//! one `Arc<str>` serialize as two copies and deserialize as distinct
//! allocations.  Spill files are private to one operator within one
//! process and are deleted after the run is drained, so the format needs
//! no versioning, endian negotiation, or cross-process stability.
//!
//! Errors are [`std::io::Error`]; corrupt input (unknown tag, invalid
//! UTF-8, truncated payload, duplicate struct field) surfaces as
//! [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` rather than a
//! panic.

use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::{Bag, StructValue, Value};

/// Variant tags of the on-disk value encoding.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_STRUCT: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_BAG: u8 = 7;

fn write_u32<W: Write>(w: &mut W, n: usize) -> io::Result<()> {
    let n = u32::try_from(n)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "spill length exceeds u32"))?;
    w.write_all(&n.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<usize> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf) as usize)
}

/// Serializes one value in the spill encoding.
///
/// # Errors
///
/// Propagates I/O errors from `w`; a string or collection longer than
/// `u32::MAX` is rejected as [`std::io::ErrorKind::InvalidData`].
pub fn write_value<W: Write>(w: &mut W, value: &Value) -> io::Result<()> {
    match value {
        Value::Null => w.write_all(&[TAG_NULL]),
        Value::Bool(b) => w.write_all(&[TAG_BOOL, u8::from(*b)]),
        Value::Int(i) => {
            w.write_all(&[TAG_INT])?;
            w.write_all(&i.to_le_bytes())
        }
        Value::Float(x) => {
            w.write_all(&[TAG_FLOAT])?;
            w.write_all(&x.to_bits().to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[TAG_STR])?;
            write_u32(w, s.len())?;
            w.write_all(s.as_bytes())
        }
        Value::Struct(s) => {
            w.write_all(&[TAG_STRUCT])?;
            write_u32(w, s.len())?;
            for (name, field) in s.iter() {
                write_u32(w, name.len())?;
                w.write_all(name.as_bytes())?;
                write_value(w, field)?;
            }
            Ok(())
        }
        Value::List(items) => {
            w.write_all(&[TAG_LIST])?;
            write_u32(w, items.len())?;
            for item in items.iter() {
                write_value(w, item)?;
            }
            Ok(())
        }
        Value::Bag(bag) => {
            w.write_all(&[TAG_BAG])?;
            write_u32(w, bag.len())?;
            for item in bag.iter() {
                write_value(w, item)?;
            }
            Ok(())
        }
    }
}

fn read_string<R: Read>(r: &mut R) -> io::Result<Arc<str>> {
    let len = read_u32(r)?;
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    let s = String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "spill string is not UTF-8"))?;
    Ok(Arc::from(s))
}

/// Deserializes one value written by [`write_value`].
///
/// # Errors
///
/// Propagates I/O errors; truncated input yields
/// [`std::io::ErrorKind::UnexpectedEof`] and a malformed payload yields
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            Ok(Value::Bool(b[0] != 0))
        }
        TAG_INT => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        TAG_FLOAT => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(b))))
        }
        TAG_STR => Ok(Value::Str(read_string(r)?)),
        TAG_STRUCT => {
            let len = read_u32(r)?;
            let mut fields = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                let name = read_string(r)?;
                let value = read_value(r)?;
                fields.push((name, value));
            }
            let s = StructValue::new(fields).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "spill struct repeats a field")
            })?;
            Ok(Value::Struct(s))
        }
        TAG_LIST => {
            let len = read_u32(r)?;
            let mut items = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                items.push(read_value(r)?);
            }
            Ok(Value::List(Arc::new(items)))
        }
        TAG_BAG => {
            let len = read_u32(r)?;
            let mut items = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                items.push(read_value(r)?);
            }
            Ok(Value::Bag(Bag::from(items)))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown spill value tag {other}"),
        )),
    }
}

/// Cap on speculative `Vec::with_capacity` during reads, so a corrupt
/// length prefix cannot request an absurd allocation before the decode
/// fails naturally on EOF.
const MAX_PREALLOC: usize = 1 << 16;

/// Approximate in-memory footprint of a value, in bytes.
///
/// This is the currency of the runtime's spill [`MemoryBudget`] — an
/// *estimate*, not an allocator measurement: it counts the inline enum
/// plus reachable heap payloads (string bytes, struct field vectors and
/// names, list/bag element vectors).  Values sharing an `Arc` are counted
/// once per reference, which overstates truly shared storage; the budget
/// only needs monotone, order-of-magnitude accounting to decide when to
/// spill, so erring toward overcounting is the safe direction.
///
/// [`MemoryBudget`]: https://docs.rs/disco-runtime
#[must_use]
pub fn approx_value_bytes(value: &Value) -> usize {
    let inline = std::mem::size_of::<Value>();
    match value {
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => inline,
        Value::Str(s) => inline + s.len(),
        Value::Struct(s) => {
            inline
                + s.iter()
                    .map(|(n, v)| std::mem::size_of::<(Arc<str>, Value)>() + n.len() + heap_only(v))
                    .sum::<usize>()
        }
        Value::List(items) => {
            inline
                + items
                    .iter()
                    .map(|v| std::mem::size_of::<Value>() + heap_only(v))
                    .sum::<usize>()
        }
        Value::Bag(bag) => {
            inline
                + bag
                    .iter()
                    .map(|v| std::mem::size_of::<Value>() + heap_only(v))
                    .sum::<usize>()
        }
    }
}

/// Heap payload of `value` excluding its inline enum size (which the
/// containing vector already accounts for).
fn heap_only(value: &Value) -> usize {
    approx_value_bytes(value) - std::mem::size_of::<Value>()
}

/// Streams records (short `Value` vectors) into a spill run.
///
/// A run is append-only: [`push`](RunWriter::push) serializes one record,
/// [`finish`](RunWriter::finish) flushes and hands the inner writer back.
/// The writer tracks how many rows and encoded bytes it has emitted so
/// the runtime can account spilled bytes without re-measuring the file.
#[derive(Debug)]
pub struct RunWriter<W: Write> {
    inner: W,
    rows: u64,
    bytes: u64,
}

/// Byte-counting shim so [`RunWriter`] can report encoded sizes without
/// serializing each record twice.
struct CountingWriter<'a, W: Write> {
    inner: &'a mut W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<W: Write> RunWriter<W> {
    /// Wraps `inner` (typically a `BufWriter<File>`) as a run writer.
    pub fn new(inner: W) -> Self {
        RunWriter {
            inner,
            rows: 0,
            bytes: 0,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the run is in an undefined state
    /// and should be discarded.
    pub fn push(&mut self, record: &[Value]) -> io::Result<()> {
        let mut counting = CountingWriter {
            inner: &mut self.inner,
            written: 0,
        };
        write_u32(&mut counting, record.len())?;
        for value in record {
            write_value(&mut counting, value)?;
        }
        self.bytes += counting.written;
        self.rows += 1;
        Ok(())
    }

    /// Number of records written so far.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of encoded bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streams records back out of a spill run written by [`RunWriter`].
#[derive(Debug)]
pub struct RunReader<R: Read> {
    inner: R,
}

impl<R: Read> RunReader<R> {
    /// Wraps `inner` (typically a `BufReader<File>` positioned at the
    /// start of a run) as a run reader.
    pub fn new(inner: R) -> Self {
        RunReader { inner }
    }

    /// Reads the next record, or `None` at a clean end of run.
    ///
    /// # Errors
    ///
    /// A record truncated mid-payload is an error
    /// ([`std::io::ErrorKind::UnexpectedEof`]), not a clean end.
    pub fn next_record(&mut self) -> io::Result<Option<Vec<Value>>> {
        let mut len_buf = [0u8; 4];
        // EOF exactly at a record boundary is the clean end of the run.
        match self.inner.read(&mut len_buf)? {
            0 => return Ok(None),
            n if n < 4 => self.inner.read_exact(&mut len_buf[n..])?,
            _ => {}
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut record = Vec::with_capacity(len.min(MAX_PREALLOC));
        for _ in 0..len {
            record.push(read_value(&mut self.inner)?);
        }
        Ok(Some(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: Vec<Value>) {
        let mut buf = Vec::new();
        let mut writer = RunWriter::new(&mut buf);
        writer.push(&values).unwrap();
        let bytes = writer.bytes();
        writer.finish().unwrap();
        assert_eq!(bytes, buf.len() as u64);
        let mut reader = RunReader::new(buf.as_slice());
        let back = reader.next_record().unwrap().unwrap();
        assert_eq!(back, values);
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(1.5),
            Value::Float(f64::NEG_INFINITY),
            Value::from("héllo — utf8"),
            Value::from(""),
        ]);
    }

    #[test]
    fn float_bit_patterns_round_trip() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::Float(nan)).unwrap();
        write_value(&mut buf, &Value::Float(-0.0)).unwrap();
        let mut r = buf.as_slice();
        match read_value(&mut r).unwrap() {
            Value::Float(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        match read_value(&mut r).unwrap() {
            Value::Float(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let row = Value::new_struct(vec![
            ("name", Value::from("Mary")),
            ("tags", Value::list(vec![Value::Int(1), Value::Null])),
            (
                "inner",
                Value::new_struct(vec![("x", Value::Float(2.5))]).unwrap(),
            ),
            (
                "bag",
                Value::Bag(Bag::from(vec![Value::from("a"), Value::from("a")])),
            ),
        ])
        .unwrap();
        round_trip(vec![row.clone(), Value::Int(7), row]);
    }

    #[test]
    fn struct_field_order_is_preserved() {
        let s = Value::new_struct(vec![("b", Value::Int(2)), ("a", Value::Int(1))]).unwrap();
        let mut buf = Vec::new();
        write_value(&mut buf, &s).unwrap();
        let back = read_value(&mut buf.as_slice()).unwrap();
        let back = back.as_struct().unwrap();
        assert_eq!(back.field_names().collect::<Vec<_>>(), vec!["b", "a"]);
    }

    #[test]
    fn multiple_records_stream_in_order() {
        let mut buf = Vec::new();
        let mut writer = RunWriter::new(&mut buf);
        for i in 0..10i64 {
            writer
                .push(&[Value::Int(i), Value::from(format!("r{i}"))])
                .unwrap();
        }
        assert_eq!(writer.rows(), 10);
        writer.finish().unwrap();
        let mut reader = RunReader::new(buf.as_slice());
        for i in 0..10i64 {
            let rec = reader.next_record().unwrap().unwrap();
            assert_eq!(rec[0], Value::Int(i));
        }
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn empty_record_round_trips() {
        let mut buf = Vec::new();
        let mut writer = RunWriter::new(&mut buf);
        writer.push(&[]).unwrap();
        writer.finish().unwrap();
        let mut reader = RunReader::new(buf.as_slice());
        assert_eq!(reader.next_record().unwrap().unwrap(), Vec::<Value>::new());
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn truncated_record_is_an_error_not_a_clean_end() {
        let mut buf = Vec::new();
        let mut writer = RunWriter::new(&mut buf);
        writer.push(&[Value::from("payload")]).unwrap();
        writer.finish().unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = RunReader::new(buf.as_slice());
        let err = reader.next_record().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_tag_is_invalid_data() {
        let buf = [42u8];
        let err = read_value(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn approx_bytes_grows_with_payload() {
        let small = approx_value_bytes(&Value::from("ab"));
        let large = approx_value_bytes(&Value::from("a".repeat(1000).as_str()));
        assert!(large > small + 900);
        let nested = Value::new_struct(vec![("k", Value::from("a".repeat(100).as_str()))]).unwrap();
        assert!(approx_value_bytes(&nested) > 100);
        assert!(approx_value_bytes(&Value::Int(1)) >= std::mem::size_of::<Value>());
    }
}
