use std::sync::Arc;

use crate::{Bag, Result, ValueError};

/// A dynamically typed runtime value in the DISCO mediator.
///
/// `Value` is the common currency exchanged between data sources, wrappers,
/// the mediator run-time system and applications.  It covers the literal
/// types of the paper's examples (`String name`, `Short salary`), the OQL
/// `struct(...)` constructor, lists, and bags (the canonical OQL
/// collection).
///
/// # Shared storage
///
/// Every variant with a heap payload ([`Value::Str`], [`Value::Struct`],
/// [`Value::List`], [`Value::Bag`]) stores it behind an [`Arc`], so
/// `Value::clone` is a reference-count bump — O(1) and allocation-free
/// regardless of how deep the value nests.  The mediator's combine step
/// (unions, joins, distinct over bags from many sources) relies on this:
/// rows flow through operator pipelines by pointer, never by deep copy.
/// Mutating constructors ([`Bag::insert`] etc.) use copy-on-write: they
/// mutate in place while the value is uniquely owned and clone only when
/// the storage is actually shared.
///
/// Ordering and equality are total: floats are compared with
/// [`f64::total_cmp`], bags with multiset semantics, and values of distinct
/// variants are ordered by variant rank.  `Hash` is canonical with respect
/// to this equality (see `ord.rs`), so values can key a `HashMap` — the
/// hash join and hash distinct build on that.
///
/// # Examples
///
/// ```
/// use disco_value::Value;
///
/// let mary = Value::new_struct(vec![
///     ("name", Value::from("Mary")),
///     ("salary", Value::from(200i64)),
/// ]).unwrap();
/// assert_eq!(mary.field("salary").unwrap(), &Value::Int(200));
/// ```
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// The absence of a value (SQL `NULL` / OQL `nil`).
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.  The paper's `Short` attributes map here.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string, shared.
    Str(Arc<str>),
    /// An ordered record of named fields (`struct(name: ..., salary: ...)`).
    Struct(StructValue),
    /// An ordered list of values, shared.
    List(Arc<Vec<Value>>),
    /// An unordered multiset of values (`Bag(...)`).
    Bag(Bag),
}

impl Value {
    /// Builds a struct value from `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::DuplicateField`] if the same field name appears
    /// twice.
    pub fn new_struct<N, I>(fields: I) -> Result<Self>
    where
        N: Into<Arc<str>>,
        I: IntoIterator<Item = (N, Value)>,
    {
        Ok(Value::Struct(StructValue::new(fields)?))
    }

    /// Builds a list value.
    #[must_use]
    pub fn list(items: Vec<Value>) -> Self {
        Value::List(Arc::new(items))
    }

    /// The name of this value's runtime type, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Struct(_) => "struct",
            Value::List(_) => "list",
            Value::Bag(_) => "bag",
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Views the value as a bool.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::TypeMismatch {
                expected: "bool",
                found: other.type_name(),
            }),
        }
    }

    /// Views the value as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not an int.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::TypeMismatch {
                expected: "int",
                found: other.type_name(),
            }),
        }
    }

    /// Views the value as a float, widening integers.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] for non-numeric values.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(i) => Ok(*i as f64),
            other => Err(ValueError::TypeMismatch {
                expected: "float",
                found: other.type_name(),
            }),
        }
    }

    /// Views the value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s.as_ref()),
            other => Err(ValueError::TypeMismatch {
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// Views the value as a struct.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not a struct.
    pub fn as_struct(&self) -> Result<&StructValue> {
        match self {
            Value::Struct(s) => Ok(s),
            other => Err(ValueError::TypeMismatch {
                expected: "struct",
                found: other.type_name(),
            }),
        }
    }

    /// Views the value as a bag.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not a bag.
    pub fn as_bag(&self) -> Result<&Bag> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(ValueError::TypeMismatch {
                expected: "bag",
                found: other.type_name(),
            }),
        }
    }

    /// Consumes the value and returns the inner bag.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] if the value is not a bag.
    pub fn into_bag(self) -> Result<Bag> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(ValueError::TypeMismatch {
                expected: "bag",
                found: other.type_name(),
            }),
        }
    }

    /// Accesses a field of a struct value (the OQL path expression `x.name`).
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NotAStruct`] when applied to a non-struct value
    /// and [`ValueError::NoSuchField`] when the field does not exist.
    pub fn field(&self, name: &str) -> Result<&Value> {
        match self {
            Value::Struct(s) => s.field(name),
            other => Err(ValueError::NotAStruct {
                found: other.type_name(),
            }),
        }
    }

    /// Returns `true` when the value is numerically comparable
    /// (int or float).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }
}

/// An ordered record of named fields.
///
/// Field order is preserved (it is the declaration order of the OQL
/// `struct(...)` constructor or of the source schema) but does not
/// participate in equality: two structs are equal when they bind the same
/// field names to equal values.
///
/// The field vector is stored behind an [`Arc`], so cloning a struct — the
/// dominant operation when rows flow through mediator pipelines — is a
/// reference-count bump.  Field names are `Arc<str>` as well: projecting,
/// renaming or merging rows shares the name storage of the input rows.
///
/// # Examples
///
/// ```
/// use disco_value::{StructValue, Value};
///
/// let s = StructValue::new(vec![
///     ("name", Value::from("Sam")),
///     ("salary", Value::from(50i64)),
/// ]).unwrap();
/// assert_eq!(s.field("name").unwrap().as_str().unwrap(), "Sam");
/// assert_eq!(s.field_names().collect::<Vec<_>>(), vec!["name", "salary"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StructValue {
    fields: Arc<Vec<(Arc<str>, Value)>>,
}

impl StructValue {
    /// Builds a struct from `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::DuplicateField`] if a field name repeats.
    pub fn new<N, I>(fields: I) -> Result<Self>
    where
        N: Into<Arc<str>>,
        I: IntoIterator<Item = (N, Value)>,
    {
        let mut out: Vec<(Arc<str>, Value)> = Vec::new();
        for (name, value) in fields {
            let name = name.into();
            if out.iter().any(|(n, _)| *n == name) {
                return Err(ValueError::DuplicateField {
                    field: name.as_ref().to_owned(),
                });
            }
            out.push((name, value));
        }
        Ok(StructValue {
            fields: Arc::new(out),
        })
    }

    /// Builds a struct from `(name, value)` pairs whose names the caller
    /// has already verified to be distinct — the batch engine validates a
    /// projection's field names once at kernel-compile time, then
    /// assembles one output struct per row without re-running the
    /// per-field duplicate scan.
    ///
    /// Distinctness is checked in debug builds only.
    #[must_use]
    pub fn from_distinct_fields(fields: Vec<(Arc<str>, Value)>) -> Self {
        debug_assert!(
            fields
                .iter()
                .enumerate()
                .all(|(i, (n, _))| fields[..i].iter().all(|(m, _)| m != n)),
            "from_distinct_fields requires distinct field names"
        );
        StructValue {
            fields: Arc::new(fields),
        }
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the struct has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up a field by name.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NoSuchField`] when the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value> {
        self.get(name)
            .ok_or_else(|| ValueError::NoSuchField { field: name.into() })
    }

    /// Looks up a field by name, returning `None` when absent.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Returns `true` if the struct defines `name`.
    #[must_use]
    pub fn has_field(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The `(name, value)` pair at declaration position `index`, or
    /// `None` past the end.  Columnar decoding uses this as a positional
    /// fast path: rows from one source share their field layout, so a
    /// cached position plus one name check replaces the linear scan of
    /// [`StructValue::get`].
    #[must_use]
    pub fn field_at(&self, index: usize) -> Option<(&str, &Value)> {
        self.fields.get(index).map(|(n, v)| (n.as_ref(), v))
    }

    /// Looks up a field by name, returning its declaration position and
    /// value.
    #[must_use]
    pub fn position(&self, name: &str) -> Option<(usize, &Value)> {
        self.fields
            .iter()
            .position(|(n, _)| n.as_ref() == name)
            .map(|i| (i, &self.fields[i].1))
    }

    /// Iterates over `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Iterates over field names in declaration order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_ref())
    }

    /// Returns `true` when `self` and `other` share the same underlying
    /// field storage (a clone of the same row).
    #[must_use]
    pub fn ptr_eq(&self, other: &StructValue) -> bool {
        Arc::ptr_eq(&self.fields, &other.fields)
    }

    /// Produces a new struct containing only `names`, in the order given.
    ///
    /// This is the value-level counterpart of the `project` logical
    /// operator.  Field names and values are shared with `self`, not
    /// copied.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NoSuchField`] if any requested field is absent
    /// and [`ValueError::DuplicateField`] if a name is requested twice.
    pub fn project<'a, I>(&self, names: I) -> Result<StructValue>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out: Vec<(Arc<str>, Value)> = Vec::new();
        for name in names {
            if out.iter().any(|(existing, _)| existing.as_ref() == name) {
                return Err(ValueError::DuplicateField { field: name.into() });
            }
            let (n, v) = self
                .fields
                .iter()
                .find(|(n, _)| n.as_ref() == name)
                .ok_or_else(|| ValueError::NoSuchField { field: name.into() })?;
            out.push((Arc::clone(n), v.clone()));
        }
        Ok(StructValue {
            fields: Arc::new(out),
        })
    }

    /// Returns a new struct with every field renamed through `rename`.
    ///
    /// Fields for which `rename` returns `None` keep their name.  This is
    /// the value-level counterpart of applying a DISCO *local
    /// transformation map* to answers coming back from a data source.
    #[must_use]
    pub fn rename_fields<F>(&self, mut rename: F) -> StructValue
    where
        F: FnMut(&str) -> Option<String>,
    {
        let fields = self
            .fields
            .iter()
            .map(|(n, v)| {
                let name = match rename(n.as_ref()) {
                    Some(new_name) => Arc::from(new_name),
                    None => Arc::clone(n),
                };
                (name, v.clone())
            })
            .collect();
        StructValue {
            fields: Arc::new(fields),
        }
    }

    /// Merges two structs into one.
    ///
    /// This is used by the mediator-side join: the joined tuple carries the
    /// fields of both inputs.  On a name clash the *right* field is
    /// prefixed with `prefix` (e.g. the range-variable name), mirroring how
    /// the paper's examples disambiguate `x.salary` and `y.salary`.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::DuplicateField`] if even the prefixed name
    /// clashes.
    pub fn merge_with_prefix(&self, other: &StructValue, prefix: &str) -> Result<StructValue> {
        let mut fields: Vec<(Arc<str>, Value)> = (*self.fields).clone();
        for (n, v) in other.fields.iter() {
            let name: Arc<str> = if fields.iter().any(|(existing, _)| existing == n) {
                Arc::from(format!("{prefix}_{n}"))
            } else {
                Arc::clone(n)
            };
            if fields.iter().any(|(existing, _)| *existing == name) {
                return Err(ValueError::DuplicateField {
                    field: name.as_ref().to_owned(),
                });
            }
            fields.push((name, v.clone()));
        }
        Ok(StructValue {
            fields: Arc::new(fields),
        })
    }

    /// Merges two structs; fields of `other` replace (shadow) same-named
    /// fields of `self`.  This is the row-construction counterpart of the
    /// evaluator's layered environment: the joined output row carries
    /// `self`'s fields first, then `other`'s.
    #[must_use]
    pub fn merged(&self, other: &StructValue) -> StructValue {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut fields: Vec<(Arc<str>, Value)> = self
            .fields
            .iter()
            .filter(|(n, _)| !other.has_field(n.as_ref()))
            .map(|(n, v)| (Arc::clone(n), v.clone()))
            .collect();
        fields.extend(other.fields.iter().map(|(n, v)| (Arc::clone(n), v.clone())));
        StructValue {
            fields: Arc::new(fields),
        }
    }

    /// Consumes the struct and returns its fields in declaration order.
    #[must_use]
    pub fn into_fields(self) -> Vec<(Arc<str>, Value)> {
        match Arc::try_unwrap(self.fields) {
            Ok(fields) => fields,
            Err(shared) => (*shared).clone(),
        }
    }
}

impl<'a> IntoIterator for &'a StructValue {
    type Item = (&'a str, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (Arc<str>, Value)>,
        fn(&'a (Arc<str>, Value)) -> (&'a str, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_rejects_duplicate_fields() {
        let err = StructValue::new(vec![("a", Value::Int(1)), ("a", Value::Int(2))]).unwrap_err();
        assert_eq!(err, ValueError::DuplicateField { field: "a".into() });
    }

    #[test]
    fn field_access_matches_paper_example() {
        let mary = Value::new_struct(vec![
            ("name", Value::from("Mary")),
            ("salary", Value::from(200i64)),
        ])
        .unwrap();
        assert_eq!(mary.field("name").unwrap().as_str().unwrap(), "Mary");
        assert_eq!(mary.field("salary").unwrap().as_int().unwrap(), 200);
        assert!(matches!(
            mary.field("age").unwrap_err(),
            ValueError::NoSuchField { .. }
        ));
    }

    #[test]
    fn field_access_on_non_struct_fails() {
        let v = Value::from(3i64);
        assert!(matches!(
            v.field("x").unwrap_err(),
            ValueError::NotAStruct { found: "int" }
        ));
    }

    #[test]
    fn clone_shares_storage() {
        let s = StructValue::new(vec![("a", Value::from("payload"))]).unwrap();
        let c = s.clone();
        assert!(s.ptr_eq(&c));
        let v = Value::from("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = StructValue::new(vec![
            ("a", Value::Int(1)),
            ("b", Value::Int(2)),
            ("c", Value::Int(3)),
        ])
        .unwrap();
        let p = s.project(["c", "a"]).unwrap();
        assert_eq!(p.field_names().collect::<Vec<_>>(), vec!["c", "a"]);
    }

    #[test]
    fn projection_of_missing_field_errors() {
        let s = StructValue::new(vec![("a", Value::Int(1))]).unwrap();
        assert!(s.project(["z"]).is_err());
    }

    #[test]
    fn projection_rejects_duplicate_names() {
        let s = StructValue::new(vec![("a", Value::Int(1)), ("b", Value::Int(2))]).unwrap();
        assert_eq!(
            s.project(["a", "a"]).unwrap_err(),
            ValueError::DuplicateField { field: "a".into() }
        );
    }

    #[test]
    fn rename_fields_applies_map() {
        // The §2.2.2 map ((name=n),(salary=s)) applied to answers renames
        // source attributes into mediator attributes.
        let s = StructValue::new(vec![
            ("name", Value::from("Mary")),
            ("salary", Value::Int(200)),
        ])
        .unwrap();
        let renamed = s.rename_fields(|f| match f {
            "name" => Some("n".into()),
            "salary" => Some("s".into()),
            _ => None,
        });
        assert!(renamed.has_field("n"));
        assert!(renamed.has_field("s"));
        assert!(!renamed.has_field("name"));
    }

    #[test]
    fn merge_with_prefix_disambiguates() {
        let left = StructValue::new(vec![
            ("name", Value::from("Mary")),
            ("salary", Value::Int(1)),
        ])
        .unwrap();
        let right =
            StructValue::new(vec![("name", Value::from("Mary")), ("dept", Value::Int(7))]).unwrap();
        let merged = left.merge_with_prefix(&right, "y").unwrap();
        assert!(merged.has_field("name"));
        assert!(merged.has_field("y_name"));
        assert!(merged.has_field("dept"));
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn merged_lets_right_shadow_left() {
        let left = StructValue::new(vec![("a", Value::Int(1)), ("b", Value::Int(2))]).unwrap();
        let right = StructValue::new(vec![("b", Value::Int(20)), ("c", Value::Int(3))]).unwrap();
        let m = left.merged(&right);
        assert_eq!(m.field("a").unwrap(), &Value::Int(1));
        assert_eq!(m.field("b").unwrap(), &Value::Int(20));
        assert_eq!(m.field("c").unwrap(), &Value::Int(3));
        assert_eq!(m.len(), 3);
        // Merging with an empty side shares storage outright.
        assert!(left.merged(&StructValue::default()).ptr_eq(&left));
        assert!(StructValue::default().merged(&right).ptr_eq(&right));
    }

    #[test]
    fn as_float_widens_int() {
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Value::from("x").as_float().is_err());
    }

    #[test]
    fn type_names_cover_all_variants() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Float(1.0).type_name(), "float");
        assert_eq!(Value::from("s").type_name(), "string");
        assert_eq!(Value::list(vec![]).type_name(), "list");
        assert_eq!(Value::Bag(Bag::new()).type_name(), "bag");
        assert_eq!(
            Value::new_struct(Vec::<(&str, Value)>::new())
                .unwrap()
                .type_name(),
            "struct"
        );
    }

    #[test]
    fn default_value_is_null() {
        assert!(Value::default().is_null());
    }
}
