use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::Value;

/// An unordered multiset of [`Value`]s — the canonical OQL collection.
///
/// The DISCO paper evaluates every query to a bag: the introductory query
/// returns `Bag("Mary", "Sam")`, and partial answers combine residual
/// queries with bags of data using bag union ("In DISCO, the union of two
/// bags is a bag").  `Bag` preserves insertion order internally (useful for
/// debugging and stable display after [`Bag::sorted`]) but equality is
/// multiset equality.
///
/// # Shared storage
///
/// The element vector lives behind an [`Arc`]: cloning a bag — which
/// happens every time a source's cached rows are fed into a plan, or a
/// `Data` node is evaluated — is a reference-count bump.  Mutating methods
/// ([`Bag::insert`], [`Bag::extend`]) are copy-on-write: they mutate in
/// place while the storage is uniquely owned and clone it only when it is
/// shared.
///
/// Multiset equality and [`Bag::distinct`] are hash-based (O(n) expected),
/// relying on `Value`'s canonical `Hash`, which is consistent with
/// `total_cmp` equality.
///
/// # Examples
///
/// ```
/// use disco_value::{Bag, Value};
///
/// let r0: Bag = [Value::from("Mary")].into_iter().collect();
/// let r1: Bag = [Value::from("Sam")].into_iter().collect();
/// let all = r0.union(&r1);
/// assert_eq!(all.len(), 2);
/// assert!(all.contains(&Value::from("Mary")));
/// ```
#[derive(Debug, Clone)]
pub struct Bag {
    items: Arc<Vec<Value>>,
}

impl Default for Bag {
    fn default() -> Self {
        Bag::new()
    }
}

impl Bag {
    /// Creates an empty bag.
    #[must_use]
    pub fn new() -> Self {
        Bag {
            items: Arc::new(Vec::new()),
        }
    }

    /// Creates an empty bag with room for `capacity` elements.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Bag {
            items: Arc::new(Vec::with_capacity(capacity)),
        }
    }

    /// Wraps shared element storage (e.g. a `Value::List` payload) into a
    /// bag without copying the vector.
    #[must_use]
    pub fn from_shared(items: Arc<Vec<Value>>) -> Self {
        Bag { items }
    }

    /// Number of elements (counting duplicates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the bag holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when `self` and `other` share the same underlying
    /// element storage (clones of the same bag).
    #[must_use]
    pub fn ptr_eq(&self, other: &Bag) -> bool {
        Arc::ptr_eq(&self.items, &other.items)
    }

    /// Adds one element to the bag (copy-on-write).
    pub fn insert(&mut self, value: Value) {
        Arc::make_mut(&mut self.items).push(value);
    }

    /// Number of occurrences of `value` in the bag.
    #[must_use]
    pub fn count(&self, value: &Value) -> usize {
        self.items.iter().filter(|v| *v == value).count()
    }

    /// Returns `true` if at least one element equals `value`.
    #[must_use]
    pub fn contains(&self, value: &Value) -> bool {
        self.items.iter().any(|v| v == value)
    }

    /// Iterates over the elements in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.items.iter()
    }

    /// Bag union: the result contains every element of `self` and `other`,
    /// with multiplicities added (ODMG bag union semantics).
    ///
    /// Elements are shared with the inputs (Arc bumps, no deep copies);
    /// a union with an empty bag shares the other side's storage outright.
    #[must_use]
    pub fn union(&self, other: &Bag) -> Bag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut items = Vec::with_capacity(self.len() + other.len());
        items.extend(self.items.iter().cloned());
        items.extend(other.items.iter().cloned());
        Bag {
            items: Arc::new(items),
        }
    }

    /// Returns a new bag with duplicates removed (OQL `distinct`),
    /// preserving first occurrence order.
    ///
    /// Hash-based: O(n) expected, using `Value`'s canonical `Hash`.
    #[must_use]
    pub fn distinct(&self) -> Bag {
        let mut seen: HashSet<&Value> = HashSet::with_capacity(self.len());
        let mut items = Vec::new();
        for v in self.items.iter() {
            if seen.insert(v) {
                items.push(v.clone());
            }
        }
        Bag {
            items: Arc::new(items),
        }
    }

    /// Flattens a bag of bags into a single bag (OQL `flatten`).
    ///
    /// Non-bag elements are kept as-is, matching the permissive behaviour
    /// the paper relies on when `flatten` is applied to the meta-extent
    /// query that collects per-source extents.
    #[must_use]
    pub fn flatten(&self) -> Bag {
        let mut items = Vec::new();
        for v in self.items.iter() {
            match v {
                Value::Bag(inner) => items.extend(inner.items.iter().cloned()),
                Value::List(inner) => items.extend(inner.iter().cloned()),
                other => items.push(other.clone()),
            }
        }
        Bag {
            items: Arc::new(items),
        }
    }

    /// Returns the elements sorted by the total value order.
    ///
    /// Useful for deterministic assertions and display; the bag itself is
    /// unordered.  The returned values share storage with the bag.
    #[must_use]
    pub fn sorted(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.items.iter().cloned().collect();
        v.sort();
        v
    }

    /// The elements as references, sorted by the total value order.
    ///
    /// This is the allocation-light path used by ordered bag comparison:
    /// only a vector of references is built and sorted — the elements
    /// themselves are never cloned.
    #[must_use]
    pub fn sorted_refs(&self) -> Vec<&Value> {
        let mut v: Vec<&Value> = self.items.iter().collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    /// Counts occurrences per distinct element (the multiset view used by
    /// hash-based equality).
    #[must_use]
    pub fn counts(&self) -> HashMap<&Value, usize> {
        let mut counts: HashMap<&Value, usize> = HashMap::with_capacity(self.len());
        for v in self.items.iter() {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// Consumes the bag and returns its elements in insertion order.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        match Arc::try_unwrap(self.items) {
            Ok(items) => items,
            Err(shared) => (*shared).clone(),
        }
    }

    /// Consumes the bag into a cursor over its elements.
    ///
    /// Unlike [`Bag::into_values`], this never copies the element vector:
    /// the cursor keeps the `Arc` storage alive and yields each element as
    /// an `Arc`-bump clone on demand.  This is the scan primitive of the
    /// streaming evaluator — a scan over a shared bag (cached source rows,
    /// a `Data` literal) costs one reference-count bump up front and one
    /// per row pulled, independent of how many clones of the bag exist.
    #[must_use]
    pub fn into_cursor(self) -> BagCursor {
        BagCursor {
            items: self.items,
            index: 0,
        }
    }

    /// A borrowing cursor over the bag's elements.
    ///
    /// Equivalent to `self.clone().into_cursor()`: the bag stays usable and
    /// the cursor shares its storage (no element is cloned until pulled).
    #[must_use]
    pub fn cursor(&self) -> BagCursor {
        self.clone().into_cursor()
    }

    /// Views the elements as a slice in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        &self.items
    }
}

/// A cursor over a bag's elements that shares the bag's storage.
///
/// Produced by [`Bag::into_cursor`] (consuming) and [`Bag::cursor`]
/// (borrowing).  Yields `Arc`-bump clones of the elements in insertion
/// order; the underlying vector is never copied, even when the storage is
/// shared with other clones of the bag.
#[derive(Debug, Clone)]
pub struct BagCursor {
    items: Arc<Vec<Value>>,
    index: usize,
}

impl Iterator for BagCursor {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let item = self.items.get(self.index)?.clone();
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.items.len() - self.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for BagCursor {}

impl PartialEq for Bag {
    /// Multiset equality, hash-based: O(n) expected instead of the
    /// clone-sort-compare with deep copies it replaces.
    fn eq(&self, other: &Self) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        if self.len() != other.len() {
            return false;
        }
        let mut counts = self.counts();
        for v in other.items.iter() {
            match counts.get_mut(v) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        // Lengths are equal and every element of `other` consumed one
        // occurrence, so all counts are zero.
        true
    }
}

impl Eq for Bag {}

impl FromIterator<Value> for Bag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Bag {
            items: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl Extend<Value> for Bag {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        Arc::make_mut(&mut self.items).extend(iter);
    }
}

impl IntoIterator for Bag {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_values().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bag {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl From<Vec<Value>> for Bag {
    fn from(items: Vec<Value>) -> Self {
        Bag {
            items: Arc::new(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> Bag {
        xs.iter().map(|i| Value::Int(*i)).collect()
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = ints(&[1, 2, 2]);
        let b = ints(&[2, 3]);
        let u = a.union(&b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.count(&Value::Int(2)), 3);
    }

    #[test]
    fn union_matches_paper_intro_example() {
        // person0 yields Mary, person1 yields Sam; union over the two
        // extents gives Bag("Mary", "Sam").
        let person0: Bag = [Value::from("Mary")].into_iter().collect();
        let person1: Bag = [Value::from("Sam")].into_iter().collect();
        let answer = person0.union(&person1);
        assert_eq!(
            answer,
            [Value::from("Sam"), Value::from("Mary")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn union_with_empty_shares_storage() {
        let a = ints(&[1, 2]);
        assert!(a.union(&Bag::new()).ptr_eq(&a));
        assert!(Bag::new().union(&a).ptr_eq(&a));
    }

    #[test]
    fn clone_is_shared_and_cow_detaches() {
        let a = ints(&[1, 2]);
        let mut b = a.clone();
        assert!(a.ptr_eq(&b));
        b.insert(Value::Int(3));
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn distinct_removes_duplicates_preserving_first_occurrence() {
        let b = ints(&[3, 1, 3, 2, 1]);
        let d = b.distinct();
        assert_eq!(d.len(), 3);
        assert_eq!(d.as_slice()[0], Value::Int(3));
    }

    #[test]
    fn distinct_is_consistent_with_numeric_equality() {
        // 2 and 2.0 are equal under total_cmp, so distinct keeps one.
        let b: Bag = [Value::Int(2), Value::Float(2.0)].into_iter().collect();
        assert_eq!(b.distinct().len(), 1);
    }

    #[test]
    fn flatten_unnests_one_level() {
        let inner1 = ints(&[1, 2]);
        let inner2 = ints(&[3]);
        let nested: Bag = [Value::Bag(inner1), Value::Bag(inner2), Value::Int(9)]
            .into_iter()
            .collect();
        let flat = nested.flatten();
        assert_eq!(flat, ints(&[1, 2, 3, 9]));
    }

    #[test]
    fn equality_is_order_insensitive() {
        assert_eq!(ints(&[1, 2, 3]), ints(&[3, 2, 1]));
        assert_ne!(ints(&[1, 2]), ints(&[1, 2, 2]));
        assert_ne!(ints(&[1, 1, 2]), ints(&[1, 2, 2]));
    }

    #[test]
    fn empty_bag_properties() {
        let b = Bag::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.union(&b), Bag::new());
        assert_eq!(b.distinct(), Bag::new());
        assert_eq!(b.flatten(), Bag::new());
    }

    #[test]
    fn extend_and_from_vec() {
        let mut b = Bag::from(vec![Value::Int(1)]);
        b.extend([Value::Int(2), Value::Int(3)]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn cursor_shares_storage_and_yields_every_element() {
        let b = ints(&[1, 2, 3]);
        let shared = b.clone();
        // The consuming cursor walks the shared storage without copying it.
        let collected: Vec<Value> = b.into_cursor().collect();
        assert_eq!(collected, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        // The borrowing cursor leaves the bag usable.
        let mut cur = shared.cursor();
        assert_eq!(cur.len(), 3);
        assert_eq!(cur.next(), Some(Value::Int(1)));
        assert_eq!(cur.len(), 2);
        assert_eq!(shared.len(), 3);
    }

    #[test]
    fn cursor_elements_share_value_storage() {
        let b: Bag = [Value::from("Mary")].into_iter().collect();
        let original = b.iter().next().unwrap().clone();
        let yielded = b.into_cursor().next().unwrap();
        match (&yielded, &original) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("unexpected values {other:?}"),
        }
    }

    #[test]
    fn sorted_refs_matches_sorted() {
        let b = ints(&[3, 1, 2]);
        let by_ref: Vec<Value> = b.sorted_refs().into_iter().cloned().collect();
        assert_eq!(by_ref, b.sorted());
    }
}
