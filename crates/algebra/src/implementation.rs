//! Implementation rules: lowering the logical algebra to the physical
//! algebra (§3.1, §3.3).
//!
//! "Logical operations are transformed into physical expressions using
//! implementation rules."  The interesting choices are:
//!
//! * `submit` → `exec` (the wrapper call),
//! * mediator joins → hash join when an equi-join key pair can be split
//!   across the two inputs, nested-loop join otherwise,
//! * everything else maps one-to-one onto its `mk*` algorithm.

use crate::logical::LogicalExpr;
use crate::physical::PhysicalExpr;
use crate::scalar::{ScalarExpr, ScalarOp};
use crate::{AlgebraError, Result};

/// Lowers a logical plan to a physical plan.
///
/// # Errors
///
/// Returns [`AlgebraError::Unsupported`] if the plan contains a bare
/// `get` outside a `submit` — every source access must go through a
/// wrapper.
pub fn lower(logical: &LogicalExpr) -> Result<PhysicalExpr> {
    match logical {
        LogicalExpr::Get { collection } => Err(AlgebraError::Unsupported(format!(
            "get({collection}) outside submit: every source access must go through a wrapper"
        ))),
        LogicalExpr::Data(bag) => Ok(PhysicalExpr::MemScan(bag.clone())),
        LogicalExpr::Submit {
            repository,
            wrapper,
            extent,
            expr,
        } => Ok(PhysicalExpr::Exec {
            repository: repository.clone(),
            wrapper: wrapper.clone(),
            extent: extent.clone(),
            logical: (**expr).clone(),
        }),
        LogicalExpr::Filter { input, predicate } => Ok(PhysicalExpr::FilterOp {
            input: Box::new(lower(input)?),
            predicate: predicate.clone(),
        }),
        LogicalExpr::Project { input, columns } => Ok(PhysicalExpr::ProjectOp {
            input: Box::new(lower(input)?),
            columns: columns.clone(),
        }),
        LogicalExpr::MapProject { input, projection } => Ok(PhysicalExpr::MapOp {
            input: Box::new(lower(input)?),
            projection: projection.clone(),
        }),
        LogicalExpr::Bind { var, input } => Ok(PhysicalExpr::BindOp {
            var: var.clone(),
            input: Box::new(lower(input)?),
        }),
        LogicalExpr::SourceJoin { left, right, on } => Ok(PhysicalExpr::MergeTuplesJoin {
            left: Box::new(lower(left)?),
            right: Box::new(lower(right)?),
            on: on.clone(),
        }),
        LogicalExpr::Join {
            left,
            right,
            predicate,
        } => lower_join(left, right, predicate.as_ref()),
        LogicalExpr::Union(items) => Ok(PhysicalExpr::MkUnion(
            items.iter().map(lower).collect::<Result<Vec<_>>>()?,
        )),
        LogicalExpr::Flatten(inner) => Ok(PhysicalExpr::MkFlatten(Box::new(lower(inner)?))),
        LogicalExpr::Distinct(inner) => Ok(PhysicalExpr::MkDistinct(Box::new(lower(inner)?))),
        LogicalExpr::Aggregate { func, input } => Ok(PhysicalExpr::MkAggregate {
            func: *func,
            input: Box::new(lower(input)?),
        }),
    }
}

fn lower_join(
    left: &LogicalExpr,
    right: &LogicalExpr,
    predicate: Option<&ScalarExpr>,
) -> Result<PhysicalExpr> {
    let left_vars = bound_vars(left);
    let right_vars = bound_vars(right);
    if let Some(pred) = predicate {
        if let Some((left_key, right_key, residual)) =
            split_equi_join(pred, &left_vars, &right_vars)
        {
            return Ok(PhysicalExpr::HashJoin {
                left: Box::new(lower(left)?),
                right: Box::new(lower(right)?),
                left_key,
                right_key,
                residual,
            });
        }
    }
    Ok(PhysicalExpr::NestedLoopJoin {
        left: Box::new(lower(left)?),
        right: Box::new(lower(right)?),
        predicate: predicate.cloned(),
    })
}

/// The range variables bound (by `Bind`) anywhere in a plan.
#[must_use]
pub fn bound_vars(plan: &LogicalExpr) -> Vec<String> {
    let mut out = Vec::new();
    plan.walk(&mut |e| {
        if let LogicalExpr::Bind { var, .. } = e {
            if !out.contains(var) {
                out.push(var.clone());
            }
        }
    });
    out
}

/// The range variables referenced by a scalar expression.
#[must_use]
pub fn referenced_vars(expr: &ScalarExpr) -> Vec<String> {
    fn walk(e: &ScalarExpr, out: &mut Vec<String>) {
        match e {
            ScalarExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            ScalarExpr::Field(base, _) => walk(base, out),
            ScalarExpr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            ScalarExpr::Not(inner) => walk(inner, out),
            ScalarExpr::StructLit(fields) => {
                for (_, e) in fields {
                    walk(e, out);
                }
            }
            ScalarExpr::Call(_, args) => {
                for a in args {
                    walk(a, out);
                }
            }
            ScalarExpr::Const(_) | ScalarExpr::Attr(_) | ScalarExpr::Agg(..) => {}
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Splits a join predicate into `(left_key, right_key, residual)` when it
/// contains an equality whose two sides reference only variables bound on
/// one input each.  Conjunctions are searched left-to-right; remaining
/// conjuncts become the residual predicate.
fn split_equi_join(
    pred: &ScalarExpr,
    left_vars: &[String],
    right_vars: &[String],
) -> Option<(ScalarExpr, ScalarExpr, Option<ScalarExpr>)> {
    let conjuncts = flatten_conjunction(pred);
    for (i, conjunct) in conjuncts.iter().enumerate() {
        if let ScalarExpr::Binary {
            op: ScalarOp::Eq,
            left,
            right,
        } = conjunct
        {
            let lvars = referenced_vars(left);
            let rvars = referenced_vars(right);
            let l_in_left = !lvars.is_empty() && lvars.iter().all(|v| left_vars.contains(v));
            let r_in_right = !rvars.is_empty() && rvars.iter().all(|v| right_vars.contains(v));
            let l_in_right = !lvars.is_empty() && lvars.iter().all(|v| right_vars.contains(v));
            let r_in_left = !rvars.is_empty() && rvars.iter().all(|v| left_vars.contains(v));
            let (lk, rk) = if l_in_left && r_in_right {
                ((**left).clone(), (**right).clone())
            } else if l_in_right && r_in_left {
                ((**right).clone(), (**left).clone())
            } else {
                continue;
            };
            let rest: Vec<ScalarExpr> = conjuncts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| (*c).clone())
                .collect();
            let residual = rest.into_iter().reduce(|a, b| ScalarExpr::Binary {
                op: ScalarOp::And,
                left: Box::new(a),
                right: Box::new(b),
            });
            return Some((lk, rk, residual));
        }
    }
    None
}

/// Flattens nested `and` into a list of conjuncts.
fn flatten_conjunction(pred: &ScalarExpr) -> Vec<&ScalarExpr> {
    match pred {
        ScalarExpr::Binary {
            op: ScalarOp::And,
            left,
            right,
        } => {
            let mut out = flatten_conjunction(left);
            out.extend(flatten_conjunction(right));
            out
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_value::Bag;

    fn submit(extent: &str, repo: &str) -> LogicalExpr {
        LogicalExpr::get(extent).submit(repo, "w0", extent)
    }

    #[test]
    fn paper_plan_lowers_to_paper_physical() {
        // union(submit(r0, project(name, get(person0))),
        //       project(name, submit(r1, get(person1))))
        let logical = LogicalExpr::Union(vec![
            LogicalExpr::get("person0")
                .project(["name"])
                .submit("r0", "w0", "person0"),
            LogicalExpr::get("person1")
                .submit("r1", "w0", "person1")
                .project(["name"]),
        ]);
        let physical = lower(&logical).unwrap();
        assert_eq!(
            physical.to_string(),
            "mkunion(exec(field(r0), project(name, get(person0))), mkproj(name, exec(field(r1), get(person1))))"
        );
        // Lowering then converting back to logical is the identity on this shape.
        assert_eq!(physical.to_logical(), logical);
    }

    #[test]
    fn bare_get_is_rejected() {
        let err = lower(&LogicalExpr::get("person0")).unwrap_err();
        assert!(matches!(err, AlgebraError::Unsupported(_)));
    }

    #[test]
    fn equi_join_uses_hash_join() {
        let left = submit("person0", "r0").bind("x");
        let right = submit("person1", "r1").bind("y");
        let pred = ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        );
        let join = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(pred),
        };
        let physical = lower(&join).unwrap();
        assert!(matches!(physical, PhysicalExpr::HashJoin { .. }));
    }

    #[test]
    fn equi_join_with_reversed_sides_still_hashes() {
        let left = submit("person0", "r0").bind("x");
        let right = submit("person1", "r1").bind("y");
        // y.id = x.id (keys written right-to-left).
        let pred = ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("y", "id"),
            ScalarExpr::var_field("x", "id"),
        );
        let join = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(pred),
        };
        match lower(&join).unwrap() {
            PhysicalExpr::HashJoin {
                left_key,
                right_key,
                ..
            } => {
                assert_eq!(left_key, ScalarExpr::var_field("x", "id"));
                assert_eq!(right_key, ScalarExpr::var_field("y", "id"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conjunction_keeps_residual_predicate() {
        let left = submit("person0", "r0").bind("x");
        let right = submit("person1", "r1").bind("y");
        let pred = ScalarExpr::binary(
            ScalarOp::And,
            ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            ),
            ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(10i64),
            ),
        );
        let join = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(pred),
        };
        match lower(&join).unwrap() {
            PhysicalExpr::HashJoin { residual, .. } => assert!(residual.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let left = submit("person0", "r0").bind("x");
        let right = submit("person1", "r1").bind("y");
        let pred = ScalarExpr::binary(
            ScalarOp::Lt,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::var_field("y", "salary"),
        );
        let join = LogicalExpr::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            predicate: Some(pred),
        };
        assert!(matches!(
            lower(&join).unwrap(),
            PhysicalExpr::NestedLoopJoin { .. }
        ));
        let cross = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: None,
        };
        assert!(matches!(
            lower(&cross).unwrap(),
            PhysicalExpr::NestedLoopJoin { .. }
        ));
    }

    #[test]
    fn data_and_other_operators_lower_one_to_one() {
        let plan = LogicalExpr::Aggregate {
            func: crate::scalar::AggKind::Sum,
            input: Box::new(LogicalExpr::Distinct(Box::new(LogicalExpr::Flatten(
                Box::new(LogicalExpr::Data(Bag::new())),
            )))),
        };
        let physical = lower(&plan).unwrap();
        assert_eq!(
            physical.to_string(),
            "mkagg(sum, mkdistinct(mkflatten(memscan(Bag()))))"
        );
        assert_eq!(physical.to_logical(), plan);
    }

    #[test]
    fn bound_vars_and_referenced_vars() {
        let plan = submit("person0", "r0").bind("x");
        assert_eq!(bound_vars(&plan), vec!["x"]);
        let e = ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        );
        assert_eq!(referenced_vars(&e), vec!["x", "y"]);
    }
}
