//! The logical algebra of the DISCO mediator (§3.1–3.2).
//!
//! The optimizer compiles OQL into a tree of [`LogicalExpr`] operators.
//! The operator set contains the paper's "usual logical operators of
//! project, join, etc." plus the DISCO-specific
//! [`LogicalExpr::Submit`] operator, which marks the boundary between the
//! mediator and a wrapper: "this operator means that the meaning of
//! `expression` is located at `source`".
//!
//! Two row shapes flow through a plan:
//!
//! * **source rows** — plain tuples of a data-source relation; produced by
//!   [`LogicalExpr::Get`] and consumed by the *pushable* operators
//!   ([`LogicalExpr::Filter`], [`LogicalExpr::Project`],
//!   [`LogicalExpr::SourceJoin`]) that may travel through `submit`,
//! * **environment rows** — structs binding each OQL range variable to its
//!   tuple; produced by [`LogicalExpr::Bind`] and consumed by the
//!   mediator-side operators ([`LogicalExpr::Join`],
//!   [`LogicalExpr::MapProject`], …).

use disco_value::{Bag, Value};

use crate::scalar::{AggKind, ScalarExpr};

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalExpr {
    /// Scan of a named collection (`get(person0)`).  The collection name is
    /// in the *mediator* name space; the `exec` physical algorithm applies
    /// the local transformation map when crossing into a data source.
    Get {
        /// The extent / relation name.
        collection: String,
    },
    /// Literal data embedded in a plan (used for partial answers and for
    /// `bag(...)` constructors).
    Data(Bag),
    /// Selection: keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalExpr>,
        /// The predicate (over the input's row shape).
        predicate: ScalarExpr,
    },
    /// Pushable projection onto named attributes (`project(name, e)`).
    Project {
        /// Input plan.
        input: Box<LogicalExpr>,
        /// Attributes to keep, in order.
        columns: Vec<String>,
    },
    /// Generalized projection evaluated by the mediator: computes an
    /// arbitrary scalar expression (struct construction, arithmetic,
    /// correlated aggregates) per environment row.
    MapProject {
        /// Input plan (environment rows).
        input: Box<LogicalExpr>,
        /// The projected expression.
        projection: ScalarExpr,
    },
    /// Join executable inside a data source (`join(e1, e2, dept)`):
    /// equi-join of two source-row inputs on pairs of attribute names,
    /// merging the tuples.
    SourceJoin {
        /// Left input (source rows).
        left: Box<LogicalExpr>,
        /// Right input (source rows).
        right: Box<LogicalExpr>,
        /// Equality conditions `(left_attr, right_attr)`.
        on: Vec<(String, String)>,
    },
    /// Wraps each source row `t` into the environment row `{var: t}`.
    Bind {
        /// The OQL range variable.
        var: String,
        /// Input plan (source rows).
        input: Box<LogicalExpr>,
    },
    /// Mediator-side join of two environment-row inputs (cross product plus
    /// optional predicate); the environments are merged.
    Join {
        /// Left input (environment rows).
        left: Box<LogicalExpr>,
        /// Right input (environment rows).
        right: Box<LogicalExpr>,
        /// Optional join predicate over the merged environment.
        predicate: Option<ScalarExpr>,
    },
    /// Bag union of any number of inputs.
    Union(Vec<LogicalExpr>),
    /// Flattens a bag of bags.
    Flatten(Box<LogicalExpr>),
    /// Removes duplicates.
    Distinct(Box<LogicalExpr>),
    /// Aggregates the input bag of scalars into a single value.
    Aggregate {
        /// The aggregate function.
        func: AggKind,
        /// Input plan producing a bag of scalars.
        input: Box<LogicalExpr>,
    },
    /// The DISCO `submit(source, expression)` operator: `expr` is to be
    /// evaluated by the wrapper `wrapper` against the repository
    /// `repository`.  The operator has remote-procedure-call semantics —
    /// it cannot accept data from another data source (§3.2), which is why
    /// semijoins are not expressible.
    Submit {
        /// The repository (data source address object) name, e.g. `r0`.
        repository: String,
        /// The wrapper name, e.g. `w0`.
        wrapper: String,
        /// The extent whose map/namespace governs the translation.
        extent: String,
        /// The expression shipped to the wrapper (still in mediator
        /// name space; `exec` applies the map).
        expr: Box<LogicalExpr>,
    },
}

impl LogicalExpr {
    /// Builds a `get` node.
    #[must_use]
    pub fn get(collection: impl Into<String>) -> LogicalExpr {
        LogicalExpr::Get {
            collection: collection.into(),
        }
    }

    /// Builds a filter node.
    #[must_use]
    pub fn filter(self, predicate: ScalarExpr) -> LogicalExpr {
        LogicalExpr::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Builds a pushable projection node.
    #[must_use]
    pub fn project<I, S>(self, columns: I) -> LogicalExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LogicalExpr::Project {
            input: Box::new(self),
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    /// Builds a bind node.
    #[must_use]
    pub fn bind(self, var: impl Into<String>) -> LogicalExpr {
        LogicalExpr::Bind {
            var: var.into(),
            input: Box::new(self),
        }
    }

    /// Builds a generalized projection node.
    #[must_use]
    pub fn map_project(self, projection: ScalarExpr) -> LogicalExpr {
        LogicalExpr::MapProject {
            input: Box::new(self),
            projection,
        }
    }

    /// Builds a submit node around `self`.
    #[must_use]
    pub fn submit(
        self,
        repository: impl Into<String>,
        wrapper: impl Into<String>,
        extent: impl Into<String>,
    ) -> LogicalExpr {
        LogicalExpr::Submit {
            repository: repository.into(),
            wrapper: wrapper.into(),
            extent: extent.into(),
            expr: Box::new(self),
        }
    }

    /// The operator name used in capability checks and cost records.
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalExpr::Get { .. } => "get",
            LogicalExpr::Data(_) => "data",
            LogicalExpr::Filter { .. } => "select",
            LogicalExpr::Project { .. } => "project",
            LogicalExpr::MapProject { .. } => "map",
            LogicalExpr::SourceJoin { .. } => "join",
            LogicalExpr::Bind { .. } => "bind",
            LogicalExpr::Join { .. } => "mediator-join",
            LogicalExpr::Union(_) => "union",
            LogicalExpr::Flatten(_) => "flatten",
            LogicalExpr::Distinct(_) => "distinct",
            LogicalExpr::Aggregate { .. } => "aggregate",
            LogicalExpr::Submit { .. } => "submit",
        }
    }

    /// Immediate children of this node.
    #[must_use]
    pub fn children(&self) -> Vec<&LogicalExpr> {
        match self {
            LogicalExpr::Get { .. } | LogicalExpr::Data(_) => Vec::new(),
            LogicalExpr::Filter { input, .. }
            | LogicalExpr::Project { input, .. }
            | LogicalExpr::MapProject { input, .. }
            | LogicalExpr::Bind { input, .. }
            | LogicalExpr::Aggregate { input, .. } => vec![input],
            LogicalExpr::Flatten(inner) | LogicalExpr::Distinct(inner) => vec![inner],
            LogicalExpr::SourceJoin { left, right, .. } | LogicalExpr::Join { left, right, .. } => {
                vec![left, right]
            }
            LogicalExpr::Union(items) => items.iter().collect(),
            LogicalExpr::Submit { expr, .. } => vec![expr],
        }
    }

    /// Every `submit` node in the plan, in pre-order.
    #[must_use]
    pub fn collect_submits(&self) -> Vec<&LogicalExpr> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if matches!(e, LogicalExpr::Submit { .. }) {
                out.push(e);
            }
        });
        out
    }

    /// Every collection name referenced by `get` nodes, in pre-order,
    /// without duplicates.
    #[must_use]
    pub fn collections(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let LogicalExpr::Get { collection } = e {
                if !out.contains(collection) {
                    out.push(collection.clone());
                }
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk<'a, F: FnMut(&'a LogicalExpr)>(&'a self, f: &mut F) {
        f(self);
        for child in self.children() {
            child.walk(f);
        }
    }

    /// Number of nodes in the plan.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Returns `true` when the plan contains no `submit`, `get` or other
    /// source access — it is pure data, so partial evaluation can stop.
    #[must_use]
    pub fn is_data_only(&self) -> bool {
        let mut pure = true;
        self.walk(&mut |e| {
            if matches!(e, LogicalExpr::Get { .. } | LogicalExpr::Submit { .. }) {
                pure = false;
            }
        });
        pure
    }

    /// Rewrites the plan bottom-up: children are rewritten first, then `f`
    /// is applied to the node itself.  `f` returns `Some(new)` to replace
    /// the node or `None` to keep it.
    #[must_use]
    pub fn rewrite_bottom_up<F>(&self, f: &F) -> LogicalExpr
    where
        F: Fn(&LogicalExpr) -> Option<LogicalExpr>,
    {
        let rebuilt = self.map_children(&|child| child.rewrite_bottom_up(f));
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Rebuilds the node with each child replaced by `f(child)`.
    #[must_use]
    pub fn map_children<F>(&self, f: &F) -> LogicalExpr
    where
        F: Fn(&LogicalExpr) -> LogicalExpr,
    {
        match self {
            LogicalExpr::Get { .. } | LogicalExpr::Data(_) => self.clone(),
            LogicalExpr::Filter { input, predicate } => LogicalExpr::Filter {
                input: Box::new(f(input)),
                predicate: predicate.clone(),
            },
            LogicalExpr::Project { input, columns } => LogicalExpr::Project {
                input: Box::new(f(input)),
                columns: columns.clone(),
            },
            LogicalExpr::MapProject { input, projection } => LogicalExpr::MapProject {
                input: Box::new(f(input)),
                projection: projection.clone(),
            },
            LogicalExpr::SourceJoin { left, right, on } => LogicalExpr::SourceJoin {
                left: Box::new(f(left)),
                right: Box::new(f(right)),
                on: on.clone(),
            },
            LogicalExpr::Bind { var, input } => LogicalExpr::Bind {
                var: var.clone(),
                input: Box::new(f(input)),
            },
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => LogicalExpr::Join {
                left: Box::new(f(left)),
                right: Box::new(f(right)),
                predicate: predicate.clone(),
            },
            LogicalExpr::Union(items) => LogicalExpr::Union(items.iter().map(f).collect()),
            LogicalExpr::Flatten(inner) => LogicalExpr::Flatten(Box::new(f(inner))),
            LogicalExpr::Distinct(inner) => LogicalExpr::Distinct(Box::new(f(inner))),
            LogicalExpr::Aggregate { func, input } => LogicalExpr::Aggregate {
                func: *func,
                input: Box::new(f(input)),
            },
            LogicalExpr::Submit {
                repository,
                wrapper,
                extent,
                expr,
            } => LogicalExpr::Submit {
                repository: repository.clone(),
                wrapper: wrapper.clone(),
                extent: extent.clone(),
                expr: Box::new(f(expr)),
            },
        }
    }

    /// A structural fingerprint with constants erased, used by the
    /// self-calibrating cost model's *close match* lookup (§3.3): two
    /// `exec` calls that differ only in constants share a fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        fn scalar_fp(e: &ScalarExpr, out: &mut String) {
            match e {
                ScalarExpr::Const(_) => out.push('?'),
                ScalarExpr::Attr(a) => out.push_str(a),
                ScalarExpr::Var(v) => out.push_str(v),
                ScalarExpr::Field(b, f) => {
                    scalar_fp(b, out);
                    out.push('.');
                    out.push_str(f);
                }
                ScalarExpr::Binary { op, left, right } => {
                    out.push('(');
                    scalar_fp(left, out);
                    out.push_str(op.symbol());
                    scalar_fp(right, out);
                    out.push(')');
                }
                ScalarExpr::Not(inner) => {
                    out.push_str("not(");
                    scalar_fp(inner, out);
                    out.push(')');
                }
                ScalarExpr::StructLit(fields) => {
                    out.push_str("struct(");
                    for (n, e) in fields {
                        out.push_str(n);
                        out.push(':');
                        scalar_fp(e, out);
                        out.push(',');
                    }
                    out.push(')');
                }
                ScalarExpr::Agg(kind, plan) => {
                    out.push_str(kind.name());
                    out.push('(');
                    out.push_str(&plan.fingerprint());
                    out.push(')');
                }
                ScalarExpr::Call(name, args) => {
                    out.push_str(name);
                    out.push('(');
                    for a in args {
                        scalar_fp(a, out);
                        out.push(',');
                    }
                    out.push(')');
                }
            }
        }
        fn fp(e: &LogicalExpr, out: &mut String) {
            match e {
                LogicalExpr::Get { collection } => {
                    out.push_str("get(");
                    out.push_str(collection);
                    out.push(')');
                }
                LogicalExpr::Data(_) => out.push_str("data(?)"),
                LogicalExpr::Filter { input, predicate } => {
                    out.push_str("select(");
                    scalar_fp(predicate, out);
                    out.push(',');
                    fp(input, out);
                    out.push(')');
                }
                LogicalExpr::Project { input, columns } => {
                    out.push_str("project(");
                    out.push_str(&columns.join("+"));
                    out.push(',');
                    fp(input, out);
                    out.push(')');
                }
                LogicalExpr::MapProject { input, projection } => {
                    out.push_str("map(");
                    scalar_fp(projection, out);
                    out.push(',');
                    fp(input, out);
                    out.push(')');
                }
                LogicalExpr::SourceJoin { left, right, on } => {
                    out.push_str("join(");
                    fp(left, out);
                    out.push(',');
                    fp(right, out);
                    out.push(',');
                    for (l, r) in on {
                        out.push_str(l);
                        out.push('=');
                        out.push_str(r);
                        out.push(',');
                    }
                    out.push(')');
                }
                LogicalExpr::Bind { var, input } => {
                    out.push_str("bind(");
                    out.push_str(var);
                    out.push(',');
                    fp(input, out);
                    out.push(')');
                }
                LogicalExpr::Join {
                    left,
                    right,
                    predicate,
                } => {
                    out.push_str("mjoin(");
                    fp(left, out);
                    out.push(',');
                    fp(right, out);
                    if let Some(p) = predicate {
                        out.push(',');
                        scalar_fp(p, out);
                    }
                    out.push(')');
                }
                LogicalExpr::Union(items) => {
                    out.push_str("union(");
                    for i in items {
                        fp(i, out);
                        out.push(',');
                    }
                    out.push(')');
                }
                LogicalExpr::Flatten(inner) => {
                    out.push_str("flatten(");
                    fp(inner, out);
                    out.push(')');
                }
                LogicalExpr::Distinct(inner) => {
                    out.push_str("distinct(");
                    fp(inner, out);
                    out.push(')');
                }
                LogicalExpr::Aggregate { func, input } => {
                    out.push_str(func.name());
                    out.push('(');
                    fp(input, out);
                    out.push(')');
                }
                LogicalExpr::Submit {
                    repository, expr, ..
                } => {
                    out.push_str("submit(");
                    out.push_str(repository);
                    out.push(',');
                    fp(expr, out);
                    out.push(')');
                }
            }
        }
        let mut s = String::new();
        fp(self, &mut s);
        s
    }
}

impl std::fmt::Display for LogicalExpr {
    /// Prints the plan in the paper's textual notation, e.g.
    /// `union(project(name, submit(r0, get(person0))), …)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicalExpr::Get { collection } => write!(f, "get({collection})"),
            LogicalExpr::Data(bag) => {
                if bag.len() <= 4 {
                    write!(f, "data({bag})")
                } else {
                    write!(f, "data(<{} values>)", bag.len())
                }
            }
            LogicalExpr::Filter { input, predicate } => {
                write!(f, "select({predicate}, {input})")
            }
            LogicalExpr::Project { input, columns } => {
                write!(f, "project({}, {input})", columns.join(", "))
            }
            LogicalExpr::MapProject { input, projection } => {
                write!(f, "map({projection}, {input})")
            }
            LogicalExpr::SourceJoin { left, right, on } => {
                let cond: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "join({left}, {right}, {})", cond.join(","))
            }
            LogicalExpr::Bind { var, input } => write!(f, "bind({var}, {input})"),
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => match predicate {
                Some(p) => write!(f, "mjoin({left}, {right}, {p})"),
                None => write!(f, "mjoin({left}, {right})"),
            },
            LogicalExpr::Union(items) => {
                write!(f, "union(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            LogicalExpr::Flatten(inner) => write!(f, "flatten({inner})"),
            LogicalExpr::Distinct(inner) => write!(f, "distinct({inner})"),
            LogicalExpr::Aggregate { func, input } => write!(f, "{}({input})", func.name()),
            LogicalExpr::Submit {
                repository, expr, ..
            } => write!(f, "submit({repository}, {expr})"),
        }
    }
}

/// Builds a [`LogicalExpr::Data`] node from literal values.
#[must_use]
pub fn data_of<I, V>(values: I) -> LogicalExpr
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    LogicalExpr::Data(values.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarOp;

    /// The paper's §3.2 running plan:
    /// `union(project(name, submit(r0, get(person0))),
    ///        project(name, submit(r1, get(person1))))`.
    fn paper_plan() -> LogicalExpr {
        LogicalExpr::Union(vec![
            LogicalExpr::get("person0")
                .submit("r0", "w0", "person0")
                .project(["name"]),
            LogicalExpr::get("person1")
                .submit("r1", "w0", "person1")
                .project(["name"]),
        ])
    }

    #[test]
    fn display_matches_paper_notation() {
        let plan = paper_plan();
        assert_eq!(
            plan.to_string(),
            "union(project(name, submit(r0, get(person0))), project(name, submit(r1, get(person1))))"
        );
    }

    #[test]
    fn pushed_project_displays_inside_submit() {
        // The §3.2 rewritten form where r0's wrapper supports project.
        let plan = LogicalExpr::Union(vec![
            LogicalExpr::get("person0")
                .project(["name"])
                .submit("r0", "w0", "person0"),
            LogicalExpr::get("person1")
                .submit("r1", "w0", "person1")
                .project(["name"]),
        ]);
        assert_eq!(
            plan.to_string(),
            "union(submit(r0, project(name, get(person0))), project(name, submit(r1, get(person1))))"
        );
    }

    #[test]
    fn collect_submits_and_collections() {
        let plan = paper_plan();
        assert_eq!(plan.collect_submits().len(), 2);
        assert_eq!(plan.collections(), vec!["person0", "person1"]);
        assert_eq!(plan.size(), 7);
    }

    #[test]
    fn is_data_only_detects_residual_work() {
        assert!(!paper_plan().is_data_only());
        assert!(data_of(["Sam"]).is_data_only());
        let mixed = LogicalExpr::Union(vec![data_of(["Sam"]), paper_plan()]);
        assert!(!mixed.is_data_only());
    }

    #[test]
    fn rewrite_bottom_up_replaces_nodes() {
        // Replace every Get with Data to simulate evaluation.
        let plan = paper_plan();
        let rewritten = plan.rewrite_bottom_up(&|e| match e {
            LogicalExpr::Submit { .. } => Some(data_of(["x"])),
            _ => None,
        });
        assert!(rewritten.is_data_only());
        assert_eq!(rewritten.collect_submits().len(), 0);
    }

    #[test]
    fn fingerprint_erases_constants_only() {
        let a = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        ));
        let b = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(9999i64),
        ));
        let c = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("age"),
            ScalarExpr::constant(10i64),
        ));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn op_names_cover_all_variants() {
        assert_eq!(LogicalExpr::get("x").op_name(), "get");
        assert_eq!(data_of([1i64]).op_name(), "data");
        assert_eq!(
            LogicalExpr::get("x")
                .filter(ScalarExpr::constant(true))
                .op_name(),
            "select"
        );
        assert_eq!(LogicalExpr::get("x").project(["a"]).op_name(), "project");
        assert_eq!(LogicalExpr::get("x").bind("v").op_name(), "bind");
        assert_eq!(
            LogicalExpr::get("x").submit("r", "w", "x").op_name(),
            "submit"
        );
    }

    #[test]
    fn map_children_preserves_structure() {
        let plan = paper_plan();
        let same = plan.map_children(&Clone::clone);
        assert_eq!(plan, same);
    }
}
