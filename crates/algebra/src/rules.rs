//! Transformation rules over the logical algebra (§3.1–3.2).
//!
//! "Transformation rules rewrite logical expressions to equivalent logical
//! expressions."  The DISCO-specific rules push operators through the
//! `submit` boundary onto wrappers; they are only applied when the
//! wrapper's capability set accepts the resulting expression ("the
//! transformation rule consults the wrapper interface with a call to the
//! submit-functionality method").
//!
//! Every rule is a pure function `&LogicalExpr -> Option<LogicalExpr>`
//! returning `Some(rewritten)` when it applies.  The optimizer composes
//! them into alternative plans and costs each alternative.

use crate::capability::CapabilitySet;
use crate::logical::LogicalExpr;
use crate::scalar::ScalarExpr;

/// Looks up the capability set of a wrapper by name.
pub trait CapabilityLookup {
    /// The capabilities of `wrapper`, or `None` if unknown (treated as
    /// `get`-only).
    fn capabilities(&self, wrapper: &str) -> Option<CapabilitySet>;
}

impl CapabilityLookup for std::collections::BTreeMap<String, CapabilitySet> {
    fn capabilities(&self, wrapper: &str) -> Option<CapabilitySet> {
        self.get(wrapper).cloned()
    }
}

fn caps_of(lookup: &dyn CapabilityLookup, wrapper: &str) -> CapabilitySet {
    lookup
        .capabilities(wrapper)
        .unwrap_or_else(CapabilitySet::get_only)
}

/// R1 — push a filter into a `submit` when the wrapper supports it:
/// `select(p, submit(r, e))  →  submit(r, select(p, e))`.
#[must_use]
pub fn push_filter_into_submit(
    expr: &LogicalExpr,
    lookup: &dyn CapabilityLookup,
) -> Option<LogicalExpr> {
    let LogicalExpr::Filter { input, predicate } = expr else {
        return None;
    };
    let LogicalExpr::Submit {
        repository,
        wrapper,
        extent,
        expr: inner,
    } = input.as_ref()
    else {
        return None;
    };
    let pushed = LogicalExpr::Filter {
        input: inner.clone(),
        predicate: predicate.clone(),
    };
    let caps = caps_of(lookup, wrapper);
    if caps.accepts_named(&pushed, wrapper).is_err() {
        return None;
    }
    Some(LogicalExpr::Submit {
        repository: repository.clone(),
        wrapper: wrapper.clone(),
        extent: extent.clone(),
        expr: Box::new(pushed),
    })
}

/// R2 — push a projection into a `submit` when the wrapper supports it:
/// `project(a…, submit(r, e))  →  submit(r, project(a…, e))`.
#[must_use]
pub fn push_project_into_submit(
    expr: &LogicalExpr,
    lookup: &dyn CapabilityLookup,
) -> Option<LogicalExpr> {
    let LogicalExpr::Project { input, columns } = expr else {
        return None;
    };
    let LogicalExpr::Submit {
        repository,
        wrapper,
        extent,
        expr: inner,
    } = input.as_ref()
    else {
        return None;
    };
    let pushed = LogicalExpr::Project {
        input: inner.clone(),
        columns: columns.clone(),
    };
    let caps = caps_of(lookup, wrapper);
    if caps.accepts_named(&pushed, wrapper).is_err() {
        return None;
    }
    Some(LogicalExpr::Submit {
        repository: repository.clone(),
        wrapper: wrapper.clone(),
        extent: extent.clone(),
        expr: Box::new(pushed),
    })
}

/// R3 — merge two submits to the *same* repository and wrapper into one
/// source-side join (the §3.2 employee/manager example):
/// `join(submit(r,e1), submit(r,e2), on) → submit(r, join(e1, e2, on))`.
#[must_use]
pub fn push_join_into_submit(
    expr: &LogicalExpr,
    lookup: &dyn CapabilityLookup,
) -> Option<LogicalExpr> {
    let LogicalExpr::SourceJoin { left, right, on } = expr else {
        return None;
    };
    let LogicalExpr::Submit {
        repository: lr,
        wrapper: lw,
        extent: le,
        expr: linner,
    } = left.as_ref()
    else {
        return None;
    };
    let LogicalExpr::Submit {
        repository: rr,
        wrapper: rw,
        expr: rinner,
        ..
    } = right.as_ref()
    else {
        return None;
    };
    if lr != rr || lw != rw {
        // The submit operator has RPC semantics: it cannot accept data from
        // another data source, so cross-source joins stay at the mediator.
        return None;
    }
    let pushed = LogicalExpr::SourceJoin {
        left: linner.clone(),
        right: rinner.clone(),
        on: on.clone(),
    };
    let caps = caps_of(lookup, lw);
    if caps.accepts_named(&pushed, lw).is_err() {
        return None;
    }
    Some(LogicalExpr::Submit {
        repository: lr.clone(),
        wrapper: lw.clone(),
        extent: le.clone(),
        expr: Box::new(pushed),
    })
}

/// R4 — distribute `bind` over `union`:
/// `bind(x, union(e1,…)) → union(bind(x,e1),…)`.
#[must_use]
pub fn distribute_bind_over_union(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Bind { var, input } = expr else {
        return None;
    };
    let LogicalExpr::Union(items) = input.as_ref() else {
        return None;
    };
    Some(LogicalExpr::Union(
        items
            .iter()
            .map(|item| LogicalExpr::Bind {
                var: var.clone(),
                input: Box::new(item.clone()),
            })
            .collect(),
    ))
}

/// R5 — distribute a filter over `union`:
/// `select(p, union(e1,…)) → union(select(p,e1),…)`.
#[must_use]
pub fn distribute_filter_over_union(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Filter { input, predicate } = expr else {
        return None;
    };
    let LogicalExpr::Union(items) = input.as_ref() else {
        return None;
    };
    Some(LogicalExpr::Union(
        items
            .iter()
            .map(|item| LogicalExpr::Filter {
                input: Box::new(item.clone()),
                predicate: predicate.clone(),
            })
            .collect(),
    ))
}

/// R6 — distribute a projection (plain or generalized) over `union`.
#[must_use]
pub fn distribute_project_over_union(expr: &LogicalExpr) -> Option<LogicalExpr> {
    match expr {
        LogicalExpr::Project { input, columns } => {
            let LogicalExpr::Union(items) = input.as_ref() else {
                return None;
            };
            Some(LogicalExpr::Union(
                items
                    .iter()
                    .map(|item| LogicalExpr::Project {
                        input: Box::new(item.clone()),
                        columns: columns.clone(),
                    })
                    .collect(),
            ))
        }
        LogicalExpr::MapProject { input, projection } => {
            let LogicalExpr::Union(items) = input.as_ref() else {
                return None;
            };
            Some(LogicalExpr::Union(
                items
                    .iter()
                    .map(|item| LogicalExpr::MapProject {
                        input: Box::new(item.clone()),
                        projection: projection.clone(),
                    })
                    .collect(),
            ))
        }
        _ => None,
    }
}

/// R7 — push a filter through a `bind` when its predicate only references
/// the bound variable:
/// `select(x.a > k, bind(x, e)) → bind(x, select(a > k, e))`.
///
/// The predicate is rewritten from environment form (`Var("x").a`) to
/// source form (`Attr("a")`).
#[must_use]
pub fn push_filter_through_bind(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Filter { input, predicate } = expr else {
        return None;
    };
    let LogicalExpr::Bind { var, input: inner } = input.as_ref() else {
        return None;
    };
    let rewritten = rewrite_env_predicate(predicate, var)?;
    if !rewritten.is_pushable() {
        return None;
    }
    Some(LogicalExpr::Bind {
        var: var.clone(),
        input: Box::new(LogicalExpr::Filter {
            input: inner.clone(),
            predicate: rewritten,
        }),
    })
}

/// R8 — swap a filter below a plain projection when the predicate only
/// uses projected columns:
/// `select(p, project(a…, e)) → project(a…, select(p, e))`.
#[must_use]
pub fn push_filter_below_project(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Filter { input, predicate } = expr else {
        return None;
    };
    let LogicalExpr::Project {
        input: inner,
        columns,
    } = input.as_ref()
    else {
        return None;
    };
    if !predicate
        .referenced_attrs()
        .iter()
        .all(|a| columns.contains(a))
    {
        return None;
    }
    Some(LogicalExpr::Project {
        input: Box::new(LogicalExpr::Filter {
            input: inner.clone(),
            predicate: predicate.clone(),
        }),
        columns: columns.clone(),
    })
}

/// R9 — swap a plain projection below a filter when the predicate only
/// uses projected columns:
/// `project(a…, select(p, e)) → select(p, project(a…, e))`.
///
/// This is the inverse of [`push_filter_below_project`] and is therefore
/// *not* part of [`normalize`]; the optimizer applies it when a wrapper can
/// accept projections but not selections, so that the projection can still
/// reach the `submit`.
#[must_use]
pub fn push_project_below_filter(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Project { input, columns } = expr else {
        return None;
    };
    let LogicalExpr::Filter {
        input: inner,
        predicate,
    } = input.as_ref()
    else {
        return None;
    };
    if !predicate
        .referenced_attrs()
        .iter()
        .all(|a| columns.contains(a))
    {
        return None;
    }
    Some(LogicalExpr::Filter {
        input: Box::new(LogicalExpr::Project {
            input: inner.clone(),
            columns: columns.clone(),
        }),
        predicate: predicate.clone(),
    })
}

/// R10 — flatten nested unions and drop empty data branches:
/// `union(union(a,b), data(), c) → union(a, b, c)`.
#[must_use]
pub fn simplify_union(expr: &LogicalExpr) -> Option<LogicalExpr> {
    let LogicalExpr::Union(items) = expr else {
        return None;
    };
    let mut flat = Vec::new();
    let mut changed = false;
    for item in items {
        match item {
            LogicalExpr::Union(nested) => {
                changed = true;
                flat.extend(nested.iter().cloned());
            }
            LogicalExpr::Data(bag) if bag.is_empty() && items.len() > 1 => {
                changed = true;
            }
            other => flat.push(other.clone()),
        }
    }
    if !changed {
        return None;
    }
    Some(match flat.len() {
        0 => LogicalExpr::Data(disco_value::Bag::new()),
        1 => flat.into_iter().next().expect("one item"),
        _ => LogicalExpr::Union(flat),
    })
}

/// Rewrites an environment-form predicate over a single variable into
/// source form: `Var(var).field → Attr(field)`.  Returns `None` when the
/// predicate mentions any other variable, a bare `Var`, an aggregate or a
/// call.
#[must_use]
pub fn rewrite_env_predicate(predicate: &ScalarExpr, var: &str) -> Option<ScalarExpr> {
    match predicate {
        ScalarExpr::Const(v) => Some(ScalarExpr::Const(v.clone())),
        ScalarExpr::Attr(a) => Some(ScalarExpr::Attr(a.clone())),
        ScalarExpr::Field(base, field) => match base.as_ref() {
            ScalarExpr::Var(v) if v == var => Some(ScalarExpr::Attr(field.clone())),
            _ => None,
        },
        ScalarExpr::Var(_) => None,
        ScalarExpr::Binary { op, left, right } => Some(ScalarExpr::Binary {
            op: *op,
            left: Box::new(rewrite_env_predicate(left, var)?),
            right: Box::new(rewrite_env_predicate(right, var)?),
        }),
        ScalarExpr::Not(inner) => Some(ScalarExpr::Not(Box::new(rewrite_env_predicate(
            inner, var,
        )?))),
        ScalarExpr::StructLit(_) | ScalarExpr::Agg(..) | ScalarExpr::Call(..) => None,
    }
}

/// Applies every *capability-independent* simplification rule bottom-up to
/// a fixpoint (distribution over unions, filter/bind commutation, union
/// flattening).  Capability-dependent pushdowns are applied separately by
/// the optimizer so that it can cost alternatives.
#[must_use]
pub fn normalize(expr: &LogicalExpr) -> LogicalExpr {
    let mut current = expr.clone();
    for _ in 0..64 {
        let next = current.rewrite_bottom_up(&|e| {
            distribute_bind_over_union(e)
                .or_else(|| distribute_filter_over_union(e))
                .or_else(|| distribute_project_over_union(e))
                .or_else(|| push_filter_through_bind(e))
                .or_else(|| push_filter_below_project(e))
                .or_else(|| simplify_union(e))
        });
        if next == current {
            break;
        }
        current = next;
    }
    current
}

/// Applies the capability-dependent pushdown rules (R1–R3) bottom-up to a
/// fixpoint, consulting `lookup` before each push.
#[must_use]
pub fn push_to_wrappers(expr: &LogicalExpr, lookup: &dyn CapabilityLookup) -> LogicalExpr {
    let mut current = expr.clone();
    for _ in 0..64 {
        let next = current.rewrite_bottom_up(&|e| {
            push_filter_into_submit(e, lookup)
                .or_else(|| push_project_into_submit(e, lookup))
                .or_else(|| push_join_into_submit(e, lookup))
                .or_else(|| {
                    // A projection blocked by a non-pushable filter may
                    // still reach the wrapper by commuting below it first.
                    let swapped = push_project_below_filter(e)?;
                    let rewritten =
                        swapped.rewrite_bottom_up(&|inner| push_project_into_submit(inner, lookup));
                    (rewritten != swapped).then_some(rewritten)
                })
        });
        if next == current {
            break;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::OperatorKind;
    use crate::scalar::ScalarOp;
    use std::collections::BTreeMap;

    fn lookup_with(wrapper: &str, caps: CapabilitySet) -> BTreeMap<String, CapabilitySet> {
        let mut m = BTreeMap::new();
        m.insert(wrapper.to_owned(), caps);
        m
    }

    fn salary_gt_10_env() -> ScalarExpr {
        ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::constant(10i64),
        )
    }

    fn salary_gt_10_src() -> ScalarExpr {
        ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        )
    }

    #[test]
    fn filter_pushes_into_capable_submit_only() {
        let expr = LogicalExpr::get("person0")
            .submit("r0", "w_full", "person0")
            .filter(salary_gt_10_src());
        let full = lookup_with("w_full", CapabilitySet::full());
        let rewritten = push_filter_into_submit(&expr, &full).unwrap();
        assert_eq!(
            rewritten.to_string(),
            "submit(r0, select((salary > 10), get(person0)))"
        );
        let get_only = lookup_with("w_full", CapabilitySet::get_only());
        assert!(push_filter_into_submit(&expr, &get_only).is_none());
        // Unknown wrappers default to get-only.
        let empty: BTreeMap<String, CapabilitySet> = BTreeMap::new();
        assert!(push_filter_into_submit(&expr, &empty).is_none());
    }

    #[test]
    fn project_pushes_into_capable_submit() {
        let expr = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .project(["name"]);
        let caps = lookup_with(
            "w0",
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true),
        );
        let rewritten = push_project_into_submit(&expr, &caps).unwrap();
        assert_eq!(
            rewritten.to_string(),
            "submit(r0, project(name, get(person0)))"
        );
    }

    #[test]
    fn join_pushes_only_for_same_repository() {
        let join_same = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("employee0").submit("r0", "w0", "employee0")),
            right: Box::new(LogicalExpr::get("manager0").submit("r0", "w0", "manager0")),
            on: vec![("dept".into(), "dept".into())],
        };
        let caps = lookup_with("w0", CapabilitySet::full());
        let rewritten = push_join_into_submit(&join_same, &caps).unwrap();
        assert_eq!(
            rewritten.to_string(),
            "submit(r0, join(get(employee0), get(manager0), dept=dept))"
        );
        // Different repositories: semijoin-style shipping is impossible,
        // the join stays at the mediator.
        let join_cross = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("employee0").submit("r0", "w0", "employee0")),
            right: Box::new(LogicalExpr::get("manager1").submit("r1", "w0", "manager1")),
            on: vec![("dept".into(), "dept".into())],
        };
        assert!(push_join_into_submit(&join_cross, &caps).is_none());
    }

    #[test]
    fn union_distribution_rules() {
        let union = LogicalExpr::Union(vec![
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
            LogicalExpr::get("person1").submit("r1", "w0", "person1"),
        ]);
        let bound = LogicalExpr::Bind {
            var: "x".into(),
            input: Box::new(union),
        };
        let distributed = distribute_bind_over_union(&bound).unwrap();
        match &distributed {
            LogicalExpr::Union(items) => {
                assert_eq!(items.len(), 2);
                assert!(items.iter().all(|i| matches!(i, LogicalExpr::Bind { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
        let filtered = LogicalExpr::Filter {
            input: Box::new(distributed.clone()),
            predicate: salary_gt_10_env(),
        };
        assert!(distribute_filter_over_union(&filtered).is_some());
        let mapped = LogicalExpr::MapProject {
            input: Box::new(distributed),
            projection: ScalarExpr::var_field("x", "name"),
        };
        assert!(distribute_project_over_union(&mapped).is_some());
    }

    #[test]
    fn filter_pushes_through_bind_with_attr_rewrite() {
        let expr = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .bind("x")
            .filter(salary_gt_10_env());
        let rewritten = push_filter_through_bind(&expr).unwrap();
        match &rewritten {
            LogicalExpr::Bind { var, input } => {
                assert_eq!(var, "x");
                match input.as_ref() {
                    LogicalExpr::Filter { predicate, .. } => {
                        assert_eq!(predicate.referenced_attrs(), vec!["salary"]);
                        assert!(predicate.is_pushable());
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_referencing_two_vars_does_not_push_through_bind() {
        let two_var_pred = ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        );
        let expr = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .bind("x")
            .filter(two_var_pred);
        assert!(push_filter_through_bind(&expr).is_none());
    }

    #[test]
    fn filter_below_project_requires_column_subset() {
        let ok = LogicalExpr::get("person0")
            .project(["name", "salary"])
            .filter(salary_gt_10_src());
        assert!(push_filter_below_project(&ok).is_some());
        let missing = LogicalExpr::get("person0")
            .project(["name"])
            .filter(salary_gt_10_src());
        assert!(push_filter_below_project(&missing).is_none());
    }

    #[test]
    fn union_simplification() {
        let nested = LogicalExpr::Union(vec![
            LogicalExpr::Union(vec![LogicalExpr::get("a"), LogicalExpr::get("b")]),
            LogicalExpr::Data(disco_value::Bag::new()),
            LogicalExpr::get("c"),
        ]);
        let simplified = simplify_union(&nested).unwrap();
        match simplified {
            LogicalExpr::Union(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        // Already-flat unions are left alone.
        let flat = LogicalExpr::Union(vec![LogicalExpr::get("a"), LogicalExpr::get("b")]);
        assert!(simplify_union(&flat).is_none());
    }

    #[test]
    fn normalize_produces_per_source_pipelines() {
        // The compiled shape of the paper's intro query over two sources:
        // map(x.name, select(x.salary>10, bind(x, union(submit, submit)))).
        let compiled = LogicalExpr::Bind {
            var: "x".into(),
            input: Box::new(LogicalExpr::Union(vec![
                LogicalExpr::get("person0").submit("r0", "w0", "person0"),
                LogicalExpr::get("person1").submit("r1", "w0", "person1"),
            ])),
        }
        .filter(salary_gt_10_env())
        .map_project(ScalarExpr::var_field("x", "name"));
        let normalized = normalize(&compiled);
        // After normalization the union is outermost and each branch has a
        // source-form filter below its bind.
        match &normalized {
            LogicalExpr::Union(items) => {
                assert_eq!(items.len(), 2);
                for item in items {
                    let text = item.to_string();
                    assert!(text.contains("select((salary > 10)"), "branch: {text}");
                    assert!(text.starts_with("map("), "branch: {text}");
                }
            }
            other => panic!("expected union at top, got {other}"),
        }
    }

    #[test]
    fn push_to_wrappers_respects_per_wrapper_capabilities() {
        // person0's wrapper supports select+project+compose; person1's only get.
        let mut lookup = BTreeMap::new();
        lookup.insert(
            "w_full".to_owned(),
            CapabilitySet::new([
                OperatorKind::Get,
                OperatorKind::Select,
                OperatorKind::Project,
            ])
            .with_composition(true),
        );
        lookup.insert("w_min".to_owned(), CapabilitySet::get_only());
        let plan = LogicalExpr::Union(vec![
            LogicalExpr::get("person0")
                .submit("r0", "w_full", "person0")
                .filter(salary_gt_10_src())
                .project(["name"]),
            LogicalExpr::get("person1")
                .submit("r1", "w_min", "person1")
                .filter(salary_gt_10_src())
                .project(["name"]),
        ]);
        let pushed = push_to_wrappers(&plan, &lookup);
        let text = pushed.to_string();
        assert!(
            text.contains("submit(r0, project(name, select((salary > 10), get(person0))))"),
            "full wrapper branch should be fully pushed: {text}"
        );
        assert!(
            text.contains("project(name, select((salary > 10), submit(r1, get(person1))))"),
            "get-only wrapper branch should stay at the mediator: {text}"
        );
    }
}
