//! The physical algebra (§3.3).
//!
//! Implementation rules transform a logical plan into a physical plan whose
//! operators name concrete algorithms: `exec` (the physical counterpart of
//! `submit`, which calls a wrapper), `mkunion`, `mkproj`, nested-loop and
//! hash joins, and so on.  As in the paper, the second argument of
//! [`PhysicalExpr::Exec`] "is still a logical expression, because the
//! wrapper interface accepts a logical expression".
//!
//! Every physical operator can be converted back to its logical
//! counterpart with [`PhysicalExpr::to_logical`]; partial evaluation (§4)
//! depends on this to turn the unevaluated part of a plan back into an OQL
//! query.

use disco_value::Bag;

use crate::logical::LogicalExpr;
use crate::scalar::{AggKind, ScalarExpr};

/// How a physical operator consumes its inputs in the streaming
/// (pull-based cursor) engine.
///
/// The streaming engine evaluates plans operator-at-a-time: rows are
/// *pulled* through the pipeline and only the operators classified here as
/// pipeline breakers ever buffer rows.  Everything else forwards each row
/// as soon as it is produced, so intermediate state stays bounded no
/// matter how deep the pipeline is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineBehavior {
    /// Emits rows as it pulls them; holds no per-row state
    /// (scan, filter, project, map, bind, union, flatten).
    Streaming,
    /// Buffers exactly one input up front, then streams the other through
    /// it (the hash-join build side, the re-scanned inner of a nested-loop
    /// or merge-tuples join).
    BlockingBuild,
    /// Buffers state proportional to its output before (or while)
    /// emitting: `distinct` keeps the set of values seen, an aggregate
    /// folds its whole input into one value.
    Blocking,
}

/// How a physical operator's work can be distributed across the workers
/// of the parallel (morsel-driven) engine.
///
/// This refines [`PipelineBehavior`] along the *exchange* axis: not
/// whether an operator buffers rows, but whether its work can be split
/// into independent units and, for pipeline breakers, whether the
/// buffered state partitions by key hash into per-worker shards that are
/// merged (or probed shard-wise) at the phase barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeBehavior {
    /// Stateless per-row work: any worker can process any morsel (scan,
    /// filter, project, map, bind, flatten).  These operators ride along
    /// inside whichever partition their input was split into.
    Morsel,
    /// The operator's inputs are independent subtrees that can execute on
    /// different workers with no shared state (union branches — including
    /// the per-source resolved scans of a federated query).
    Branches,
    /// A pipeline breaker whose buffered state partitions by key hash:
    /// the hash-join build table (sharded by join-key hash, probed
    /// shard-wise after the build barrier), the distinct seen-set
    /// (sharded by value hash), and aggregates (per-morsel partial folds
    /// merged in morsel order at the barrier).
    Partitioned,
    /// Must execute on a single worker: the operator re-scans one input
    /// per row of the other (nested-loop and merge-tuples joins), so
    /// splitting it requires replicating the buffered side.
    Pinned,
}

/// A physical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalExpr {
    /// Calls a wrapper: ships the (logical) expression to the wrapper bound
    /// to `wrapper` for evaluation against `repository`.
    Exec {
        /// Repository name (`field(r0)` in the paper's notation).
        repository: String,
        /// Wrapper name.
        wrapper: String,
        /// The extent whose transformation map applies.
        extent: String,
        /// The logical expression shipped to the wrapper (mediator
        /// name space; the runtime applies the map before the call).
        logical: LogicalExpr,
    },
    /// Scans an in-memory bag (literal data embedded in the plan).
    MemScan(Bag),
    /// Filters rows by a predicate.
    FilterOp {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Predicate.
        predicate: ScalarExpr,
    },
    /// Projects source rows onto named columns.
    ProjectOp {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Columns to keep.
        columns: Vec<String>,
    },
    /// Computes a scalar expression per environment row (`mkproj` for
    /// generalized projections).
    MapOp {
        /// Input plan.
        input: Box<PhysicalExpr>,
        /// Projected expression.
        projection: ScalarExpr,
    },
    /// Wraps source rows into environment rows.
    BindOp {
        /// Range variable.
        var: String,
        /// Input plan.
        input: Box<PhysicalExpr>,
    },
    /// Nested-loop join of two environment-row inputs.
    NestedLoopJoin {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Optional predicate over the merged environment.
        predicate: Option<ScalarExpr>,
    },
    /// Hash join of two environment-row inputs on equi-join keys.
    HashJoin {
        /// Left input.
        left: Box<PhysicalExpr>,
        /// Right input.
        right: Box<PhysicalExpr>,
        /// Key expression evaluated on left rows.
        left_key: ScalarExpr,
        /// Key expression evaluated on right rows.
        right_key: ScalarExpr,
        /// Residual predicate applied after the key match.
        residual: Option<ScalarExpr>,
    },
    /// Source-style equi-join executed at the mediator (merging the source
    /// tuples), for `SourceJoin` nodes that could not be pushed.
    MergeTuplesJoin {
        /// Left input (source rows).
        left: Box<PhysicalExpr>,
        /// Right input (source rows).
        right: Box<PhysicalExpr>,
        /// Equality conditions `(left_attr, right_attr)`.
        on: Vec<(String, String)>,
    },
    /// Bag union.
    MkUnion(Vec<PhysicalExpr>),
    /// Flattens a bag of bags.
    MkFlatten(Box<PhysicalExpr>),
    /// Removes duplicates.
    MkDistinct(Box<PhysicalExpr>),
    /// Aggregates a bag of scalars.
    MkAggregate {
        /// Aggregate function.
        func: AggKind,
        /// Input plan.
        input: Box<PhysicalExpr>,
    },
}

impl PhysicalExpr {
    /// The algorithm name (used in traces and cost records).
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        match self {
            PhysicalExpr::Exec { .. } => "exec",
            PhysicalExpr::MemScan(_) => "memscan",
            PhysicalExpr::FilterOp { .. } => "mkselect",
            PhysicalExpr::ProjectOp { .. } => "mkproj",
            PhysicalExpr::MapOp { .. } => "mkmap",
            PhysicalExpr::BindOp { .. } => "mkbind",
            PhysicalExpr::NestedLoopJoin { .. } => "nljoin",
            PhysicalExpr::HashJoin { .. } => "hashjoin",
            PhysicalExpr::MergeTuplesJoin { .. } => "mergejoin",
            PhysicalExpr::MkUnion(_) => "mkunion",
            PhysicalExpr::MkFlatten(_) => "mkflatten",
            PhysicalExpr::MkDistinct(_) => "mkdistinct",
            PhysicalExpr::MkAggregate { .. } => "mkagg",
        }
    }

    /// How this operator consumes its inputs in the streaming engine:
    /// whether it forwards rows one at a time or is a pipeline breaker
    /// that buffers them (see [`PipelineBehavior`]).
    #[must_use]
    pub fn pipeline_behavior(&self) -> PipelineBehavior {
        match self {
            PhysicalExpr::Exec { .. }
            | PhysicalExpr::MemScan(_)
            | PhysicalExpr::FilterOp { .. }
            | PhysicalExpr::ProjectOp { .. }
            | PhysicalExpr::MapOp { .. }
            | PhysicalExpr::BindOp { .. }
            | PhysicalExpr::MkUnion(_)
            | PhysicalExpr::MkFlatten(_) => PipelineBehavior::Streaming,
            PhysicalExpr::NestedLoopJoin { .. }
            | PhysicalExpr::HashJoin { .. }
            | PhysicalExpr::MergeTuplesJoin { .. } => PipelineBehavior::BlockingBuild,
            PhysicalExpr::MkDistinct(_) | PhysicalExpr::MkAggregate { .. } => {
                PipelineBehavior::Blocking
            }
        }
    }

    /// How this operator's work distributes across the parallel engine's
    /// workers (see [`ExchangeBehavior`]).  The morsel-driven scheduler
    /// consults this classification when it decomposes a plan: it
    /// descends through `Morsel` operators, turns `Branches` inputs into
    /// independent tasks, stages `Partitioned` breakers as hash-sharded
    /// phases, and leaves `Pinned` subtrees on a single worker.
    #[must_use]
    pub fn exchange_behavior(&self) -> ExchangeBehavior {
        match self {
            PhysicalExpr::Exec { .. }
            | PhysicalExpr::MemScan(_)
            | PhysicalExpr::FilterOp { .. }
            | PhysicalExpr::ProjectOp { .. }
            | PhysicalExpr::MapOp { .. }
            | PhysicalExpr::BindOp { .. }
            | PhysicalExpr::MkFlatten(_) => ExchangeBehavior::Morsel,
            PhysicalExpr::MkUnion(_) => ExchangeBehavior::Branches,
            PhysicalExpr::HashJoin { .. }
            | PhysicalExpr::MkDistinct(_)
            | PhysicalExpr::MkAggregate { .. } => ExchangeBehavior::Partitioned,
            PhysicalExpr::NestedLoopJoin { .. } | PhysicalExpr::MergeTuplesJoin { .. } => {
                ExchangeBehavior::Pinned
            }
        }
    }

    /// Immediate children.
    #[must_use]
    pub fn children(&self) -> Vec<&PhysicalExpr> {
        match self {
            PhysicalExpr::Exec { .. } | PhysicalExpr::MemScan(_) => Vec::new(),
            PhysicalExpr::FilterOp { input, .. }
            | PhysicalExpr::ProjectOp { input, .. }
            | PhysicalExpr::MapOp { input, .. }
            | PhysicalExpr::BindOp { input, .. }
            | PhysicalExpr::MkAggregate { input, .. } => vec![input],
            PhysicalExpr::MkFlatten(inner) | PhysicalExpr::MkDistinct(inner) => vec![inner],
            PhysicalExpr::NestedLoopJoin { left, right, .. }
            | PhysicalExpr::HashJoin { left, right, .. }
            | PhysicalExpr::MergeTuplesJoin { left, right, .. } => vec![left, right],
            PhysicalExpr::MkUnion(items) => items.iter().collect(),
        }
    }

    /// Every `exec` node in the plan, in pre-order.
    #[must_use]
    pub fn collect_execs(&self) -> Vec<&PhysicalExpr> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if matches!(e, PhysicalExpr::Exec { .. }) {
                out.push(e);
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk<'a, F: FnMut(&'a PhysicalExpr)>(&'a self, f: &mut F) {
        f(self);
        for child in self.children() {
            child.walk(f);
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Converts the physical plan back into the corresponding logical plan.
    ///
    /// "This transformation is possible because each physical operation has
    /// a corresponding logical operation" (§4) — it is the first half of
    /// turning an unfinished plan back into an OQL partial answer.
    #[must_use]
    pub fn to_logical(&self) -> LogicalExpr {
        match self {
            PhysicalExpr::Exec {
                repository,
                wrapper,
                extent,
                logical,
            } => LogicalExpr::Submit {
                repository: repository.clone(),
                wrapper: wrapper.clone(),
                extent: extent.clone(),
                expr: Box::new(logical.clone()),
            },
            PhysicalExpr::MemScan(bag) => LogicalExpr::Data(bag.clone()),
            PhysicalExpr::FilterOp { input, predicate } => LogicalExpr::Filter {
                input: Box::new(input.to_logical()),
                predicate: predicate.clone(),
            },
            PhysicalExpr::ProjectOp { input, columns } => LogicalExpr::Project {
                input: Box::new(input.to_logical()),
                columns: columns.clone(),
            },
            PhysicalExpr::MapOp { input, projection } => LogicalExpr::MapProject {
                input: Box::new(input.to_logical()),
                projection: projection.clone(),
            },
            PhysicalExpr::BindOp { var, input } => LogicalExpr::Bind {
                var: var.clone(),
                input: Box::new(input.to_logical()),
            },
            PhysicalExpr::NestedLoopJoin {
                left,
                right,
                predicate,
            } => LogicalExpr::Join {
                left: Box::new(left.to_logical()),
                right: Box::new(right.to_logical()),
                predicate: predicate.clone(),
            },
            PhysicalExpr::HashJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
            } => {
                let eq = ScalarExpr::Binary {
                    op: crate::scalar::ScalarOp::Eq,
                    left: Box::new(left_key.clone()),
                    right: Box::new(right_key.clone()),
                };
                let predicate = match residual {
                    Some(r) => ScalarExpr::Binary {
                        op: crate::scalar::ScalarOp::And,
                        left: Box::new(eq),
                        right: Box::new(r.clone()),
                    },
                    None => eq,
                };
                LogicalExpr::Join {
                    left: Box::new(left.to_logical()),
                    right: Box::new(right.to_logical()),
                    predicate: Some(predicate),
                }
            }
            PhysicalExpr::MergeTuplesJoin { left, right, on } => LogicalExpr::SourceJoin {
                left: Box::new(left.to_logical()),
                right: Box::new(right.to_logical()),
                on: on.clone(),
            },
            PhysicalExpr::MkUnion(items) => {
                LogicalExpr::Union(items.iter().map(PhysicalExpr::to_logical).collect())
            }
            PhysicalExpr::MkFlatten(inner) => LogicalExpr::Flatten(Box::new(inner.to_logical())),
            PhysicalExpr::MkDistinct(inner) => LogicalExpr::Distinct(Box::new(inner.to_logical())),
            PhysicalExpr::MkAggregate { func, input } => LogicalExpr::Aggregate {
                func: *func,
                input: Box::new(input.to_logical()),
            },
        }
    }
}

impl std::fmt::Display for PhysicalExpr {
    /// Prints in the paper's physical notation, e.g.
    /// `mkunion(exec(field(r0), project(name, get(person0))), …)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysicalExpr::Exec {
                repository,
                logical,
                ..
            } => write!(f, "exec(field({repository}), {logical})"),
            PhysicalExpr::MemScan(bag) => {
                if bag.len() <= 4 {
                    write!(f, "memscan({bag})")
                } else {
                    write!(f, "memscan(<{} values>)", bag.len())
                }
            }
            PhysicalExpr::FilterOp { input, predicate } => {
                write!(f, "mkselect({predicate}, {input})")
            }
            PhysicalExpr::ProjectOp { input, columns } => {
                write!(f, "mkproj({}, {input})", columns.join(", "))
            }
            PhysicalExpr::MapOp { input, projection } => write!(f, "mkmap({projection}, {input})"),
            PhysicalExpr::BindOp { var, input } => write!(f, "mkbind({var}, {input})"),
            PhysicalExpr::NestedLoopJoin {
                left,
                right,
                predicate,
            } => match predicate {
                Some(p) => write!(f, "nljoin({left}, {right}, {p})"),
                None => write!(f, "nljoin({left}, {right})"),
            },
            PhysicalExpr::HashJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => write!(f, "hashjoin({left}, {right}, {left_key}={right_key})"),
            PhysicalExpr::MergeTuplesJoin { left, right, on } => {
                let cond: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "mergejoin({left}, {right}, {})", cond.join(","))
            }
            PhysicalExpr::MkUnion(items) => {
                write!(f, "mkunion(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            PhysicalExpr::MkFlatten(inner) => write!(f, "mkflatten({inner})"),
            PhysicalExpr::MkDistinct(inner) => write!(f, "mkdistinct({inner})"),
            PhysicalExpr::MkAggregate { func, input } => {
                write!(f, "mkagg({}, {input})", func.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarOp;

    fn paper_physical() -> PhysicalExpr {
        // mkunion(exec(field(r0), project(name, get(person0))),
        //         mkproj(name, exec(field(r1), get(person1))))
        PhysicalExpr::MkUnion(vec![
            PhysicalExpr::Exec {
                repository: "r0".into(),
                wrapper: "w0".into(),
                extent: "person0".into(),
                logical: LogicalExpr::get("person0").project(["name"]),
            },
            PhysicalExpr::ProjectOp {
                input: Box::new(PhysicalExpr::Exec {
                    repository: "r1".into(),
                    wrapper: "w0".into(),
                    extent: "person1".into(),
                    logical: LogicalExpr::get("person1"),
                }),
                columns: vec!["name".into()],
            },
        ])
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            paper_physical().to_string(),
            "mkunion(exec(field(r0), project(name, get(person0))), mkproj(name, exec(field(r1), get(person1))))"
        );
    }

    #[test]
    fn exec_collection_and_size() {
        let plan = paper_physical();
        assert_eq!(plan.collect_execs().len(), 2);
        assert_eq!(plan.size(), 4);
        assert_eq!(plan.algorithm(), "mkunion");
    }

    #[test]
    fn to_logical_round_trips_the_plan_shape() {
        let logical = paper_physical().to_logical();
        assert_eq!(
            logical.to_string(),
            "union(submit(r0, project(name, get(person0))), project(name, submit(r1, get(person1))))"
        );
    }

    #[test]
    fn hash_join_converts_to_join_with_equality_predicate() {
        let hj = PhysicalExpr::HashJoin {
            left: Box::new(PhysicalExpr::MemScan(Bag::new())),
            right: Box::new(PhysicalExpr::MemScan(Bag::new())),
            left_key: ScalarExpr::var_field("x", "id"),
            right_key: ScalarExpr::var_field("y", "id"),
            residual: None,
        };
        match hj.to_logical() {
            LogicalExpr::Join { predicate, .. } => {
                let p = predicate.unwrap();
                assert!(matches!(
                    p,
                    ScalarExpr::Binary {
                        op: ScalarOp::Eq,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_behavior_classifies_breakers() {
        let scan = PhysicalExpr::MemScan(Bag::new());
        assert_eq!(scan.pipeline_behavior(), PipelineBehavior::Streaming);
        assert_eq!(
            PhysicalExpr::FilterOp {
                input: Box::new(scan.clone()),
                predicate: ScalarExpr::constant(true),
            }
            .pipeline_behavior(),
            PipelineBehavior::Streaming
        );
        assert_eq!(
            PhysicalExpr::HashJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan.clone()),
                left_key: ScalarExpr::attr("id"),
                right_key: ScalarExpr::attr("id"),
                residual: None,
            }
            .pipeline_behavior(),
            PipelineBehavior::BlockingBuild
        );
        assert_eq!(
            PhysicalExpr::MkDistinct(Box::new(scan.clone())).pipeline_behavior(),
            PipelineBehavior::Blocking
        );
        assert_eq!(
            PhysicalExpr::MkAggregate {
                func: AggKind::Count,
                input: Box::new(scan),
            }
            .pipeline_behavior(),
            PipelineBehavior::Blocking
        );
    }

    #[test]
    fn exchange_behavior_classifies_parallelism() {
        let scan = PhysicalExpr::MemScan(Bag::new());
        assert_eq!(scan.exchange_behavior(), ExchangeBehavior::Morsel);
        assert_eq!(
            PhysicalExpr::MapOp {
                input: Box::new(scan.clone()),
                projection: ScalarExpr::constant(1i64),
            }
            .exchange_behavior(),
            ExchangeBehavior::Morsel
        );
        assert_eq!(
            PhysicalExpr::MkUnion(vec![scan.clone(), scan.clone()]).exchange_behavior(),
            ExchangeBehavior::Branches
        );
        assert_eq!(
            PhysicalExpr::HashJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan.clone()),
                left_key: ScalarExpr::attr("id"),
                right_key: ScalarExpr::attr("id"),
                residual: None,
            }
            .exchange_behavior(),
            ExchangeBehavior::Partitioned
        );
        assert_eq!(
            PhysicalExpr::MkDistinct(Box::new(scan.clone())).exchange_behavior(),
            ExchangeBehavior::Partitioned
        );
        assert_eq!(
            PhysicalExpr::MkAggregate {
                func: AggKind::Count,
                input: Box::new(scan.clone()),
            }
            .exchange_behavior(),
            ExchangeBehavior::Partitioned
        );
        assert_eq!(
            PhysicalExpr::NestedLoopJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan),
                predicate: None,
            }
            .exchange_behavior(),
            ExchangeBehavior::Pinned
        );
    }

    #[test]
    fn every_algorithm_has_a_name_and_children() {
        let scan = PhysicalExpr::MemScan(Bag::new());
        let ops: Vec<PhysicalExpr> = vec![
            PhysicalExpr::FilterOp {
                input: Box::new(scan.clone()),
                predicate: ScalarExpr::constant(true),
            },
            PhysicalExpr::MapOp {
                input: Box::new(scan.clone()),
                projection: ScalarExpr::constant(1i64),
            },
            PhysicalExpr::BindOp {
                var: "x".into(),
                input: Box::new(scan.clone()),
            },
            PhysicalExpr::NestedLoopJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan.clone()),
                predicate: None,
            },
            PhysicalExpr::MergeTuplesJoin {
                left: Box::new(scan.clone()),
                right: Box::new(scan.clone()),
                on: vec![("a".into(), "a".into())],
            },
            PhysicalExpr::MkFlatten(Box::new(scan.clone())),
            PhysicalExpr::MkDistinct(Box::new(scan.clone())),
            PhysicalExpr::MkAggregate {
                func: AggKind::Sum,
                input: Box::new(scan.clone()),
            },
        ];
        for op in ops {
            assert!(!op.algorithm().is_empty());
            assert!(!op.children().is_empty());
            // Conversion to logical never panics and preserves child count.
            let _ = op.to_logical();
        }
    }
}
