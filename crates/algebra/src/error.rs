use std::fmt;

/// Errors produced while building, transforming or evaluating algebra
/// expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// A scalar expression referenced an attribute the row does not have.
    UnknownAttribute(String),
    /// A scalar expression referenced a range variable that is not bound.
    UnknownVariable(String),
    /// A value had the wrong type for the operation.
    Type(String),
    /// Division by zero.
    DivisionByZero,
    /// A sub-query appeared where the evaluation context cannot evaluate
    /// one (e.g. inside an expression pushed to a wrapper).
    SubqueryNotSupported,
    /// An operator was pushed to a wrapper that does not support it.
    CapabilityViolation {
        /// The operator that was rejected.
        operator: String,
        /// The wrapper whose capabilities were violated.
        wrapper: String,
    },
    /// A capability grammar could not be parsed.
    InvalidGrammar(String),
    /// The expression shape is not supported by this operation.
    Unsupported(String),
    /// A value-level error from `disco-value`.
    Value(disco_value::ValueError),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            AlgebraError::UnknownVariable(v) => write!(f, "unknown range variable: {v}"),
            AlgebraError::Type(msg) => write!(f, "type error: {msg}"),
            AlgebraError::DivisionByZero => write!(f, "division by zero"),
            AlgebraError::SubqueryNotSupported => {
                write!(f, "sub-query evaluation not supported in this context")
            }
            AlgebraError::CapabilityViolation { operator, wrapper } => {
                write!(f, "wrapper {wrapper} does not support operator {operator}")
            }
            AlgebraError::InvalidGrammar(msg) => write!(f, "invalid capability grammar: {msg}"),
            AlgebraError::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
            AlgebraError::Value(err) => write!(f, "value error: {err}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Value(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_value::ValueError> for AlgebraError {
    fn from(err: disco_value::ValueError) -> Self {
        AlgebraError::Value(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AlgebraError::UnknownAttribute("salary".into()).to_string(),
            "unknown attribute: salary"
        );
        assert_eq!(
            AlgebraError::CapabilityViolation {
                operator: "join".into(),
                wrapper: "w1".into()
            }
            .to_string(),
            "wrapper w1 does not support operator join"
        );
    }

    #[test]
    fn value_error_converts() {
        let err: AlgebraError = disco_value::ValueError::NoSuchField { field: "x".into() }.into();
        assert!(matches!(err, AlgebraError::Value(_)));
    }
}
