//! Vectorized scalar kernels over columnar chunks.
//!
//! A [`Kernel`] is a scalar expression compiled against the field layout
//! of a scan: attribute references become column slots, and evaluation
//! runs over whole columns of a [`ColumnarChunk`] instead of building a
//! row [`Env`](crate::Env) per value.  The kernel set is deliberately a
//! *subset* of the evaluator — constants, column references, the binary
//! operators and `not`.  Everything else (struct literals, sub-query
//! aggregates, function calls, whole-row variables) refuses to compile,
//! and the engine evaluates those expressions through the per-row path.
//!
//! Two invariants keep the kernels exactly equivalent to
//! [`eval_binary`] / `eval_scalar_with`:
//!
//! * Typed fast paths exist only where the scalar semantics are a plain
//!   machine operation (`i64` comparisons and arithmetic on null-free
//!   columns).  Every other element pair funnels through the *actual*
//!   [`eval_binary`], so `total_cmp` ordering, NaN handling, null
//!   propagation and string concatenation cannot drift.
//! * A kernel never reports an evaluation error.  Any error — division
//!   by zero, a type mismatch — makes evaluation *bail* (`None`), and
//!   the engine re-runs that batch per-row, which reproduces the exact
//!   row-path error at the exact row it would have occurred.

use std::sync::Arc;

use disco_value::{Column, ColumnarChunk, StructValue, Value};

use crate::scalar::{eval_binary, truthy, ScalarExpr, ScalarOp};

/// A compiled kernel expression tree.
#[derive(Debug, Clone)]
pub struct Kernel {
    node: KernelNode,
}

#[derive(Debug, Clone)]
enum KernelNode {
    Const(Value),
    Col(usize),
    Binary {
        op: ScalarOp,
        left: Box<KernelNode>,
        right: Box<KernelNode>,
    },
    Not(Box<KernelNode>),
    /// A struct-literal projection: per-field kernels assemble one output
    /// struct per selected row.  Field names are verified distinct at
    /// compile time, so assembly skips the duplicate scan.
    Struct(Vec<(Arc<str>, KernelNode)>),
}

/// Refuses struct literals whose field names repeat — the row evaluator
/// reports `DuplicateField` for those, so they must stay on the row path.
fn distinct_names(fields: &[(Arc<str>, ScalarExpr)]) -> bool {
    fields
        .iter()
        .enumerate()
        .all(|(i, (n, _))| fields[..i].iter().all(|(m, _)| m != n))
}

/// Compiles scalar expressions into [`Kernel`]s against one scan's field
/// layout.
///
/// The builder accumulates the set of referenced fields across every
/// kernel of a fused pipeline stretch (one filter chain plus projection),
/// so the chunk decoder materializes each referenced column exactly once.
/// Column slots index into [`KernelBuilder::fields`] order.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    binding: Option<String>,
    fields: Vec<Arc<str>>,
}

impl KernelBuilder {
    /// A builder for rows bound under `binding` (`bind x` pipelines read
    /// fields as `x.field`), or for raw struct rows (`None`: fields are
    /// plain attributes).
    #[must_use]
    pub fn new(binding: Option<&str>) -> Self {
        KernelBuilder {
            binding: binding.map(str::to_owned),
            fields: Vec::new(),
        }
    }

    /// The referenced field names, in column-slot order.
    #[must_use]
    pub fn fields(&self) -> &[Arc<str>] {
        &self.fields
    }

    /// Compiles `expr`; `None` when any part of it is outside the kernel
    /// subset (the caller then keeps the per-row evaluator for it).
    pub fn compile(&mut self, expr: &ScalarExpr) -> Option<Kernel> {
        self.node(expr).map(|node| Kernel { node })
    }

    fn node(&mut self, expr: &ScalarExpr) -> Option<KernelNode> {
        match expr {
            ScalarExpr::Const(v) => Some(KernelNode::Const(v.clone())),
            // Unbound rows: a name resolves in the row scope itself.
            // The chunk decoder guarantees the field is present in every
            // row, so the innermost scope always wins the lookup — outer
            // environments can never shadow it.
            ScalarExpr::Attr(name) | ScalarExpr::Var(name) if self.binding.is_none() => {
                Some(KernelNode::Col(self.slot(name)))
            }
            // Bound rows `{b: row}`: only `b.field` paths touch the row.
            ScalarExpr::Field(base, field) => match (base.as_ref(), &self.binding) {
                (ScalarExpr::Var(v) | ScalarExpr::Attr(v), Some(b)) if v == b => {
                    Some(KernelNode::Col(self.slot(field)))
                }
                _ => None,
            },
            ScalarExpr::Binary { op, left, right } => Some(KernelNode::Binary {
                op: *op,
                left: Box::new(self.node(left)?),
                right: Box::new(self.node(right)?),
            }),
            ScalarExpr::Not(inner) => Some(KernelNode::Not(Box::new(self.node(inner)?))),
            ScalarExpr::StructLit(fields) if distinct_names(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, e) in fields {
                    out.push((Arc::clone(name), self.node(e)?));
                }
                Some(KernelNode::Struct(out))
            }
            ScalarExpr::Attr(_)
            | ScalarExpr::Var(_)
            | ScalarExpr::StructLit(_)
            | ScalarExpr::Agg(..)
            | ScalarExpr::Call(..) => None,
        }
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(i) = self.fields.iter().position(|f| f.as_ref() == name) {
            return i;
        }
        self.fields.push(Arc::from(name));
        self.fields.len() - 1
    }
}

/// A dense result vector, aligned with the *selected* rows of a chunk
/// (element `i` is the result for the `i`-th selected row).
pub enum EvalVec {
    /// Integer results; null slots hold `0` under the mask.
    Int {
        /// Result values.
        data: Vec<i64>,
        /// Null mask (`Some` only when nulls are present).
        nulls: Option<Vec<bool>>,
    },
    /// Boolean results; null slots hold `false` under the mask.
    Bool {
        /// Result values.
        data: Vec<bool>,
        /// Null mask (`Some` only when nulls are present).
        nulls: Option<Vec<bool>>,
    },
    /// String results with optional dictionary codes from the scan's
    /// dictionary; null slots hold an empty string / `NULL_CODE`.
    Str {
        /// Result values.
        values: Vec<Arc<str>>,
        /// Dictionary codes (equal string ⇔ equal code) when the source
        /// column was dictionary-encoded.
        codes: Option<Vec<u32>>,
        /// Null mask (`Some` only when nulls are present).
        nulls: Option<Vec<bool>>,
    },
    /// One value broadcast over every selected row.
    Const(Value),
    /// Boxed per-element results (mixed types, generic operator path).
    Values(Vec<Value>),
}

impl EvalVec {
    /// The result for the `i`-th selected row as an owned [`Value`]
    /// (`Arc` bump for strings, copy for scalars).
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the selection the vector was computed
    /// for.
    #[must_use]
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            EvalVec::Int { data, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            EvalVec::Bool { data, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            EvalVec::Str { values, nulls, .. } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(&values[i]))
                }
            }
            EvalVec::Const(v) => v.clone(),
            EvalVec::Values(vs) => vs[i].clone(),
        }
    }

    /// OQL truthiness of each of the `n` selected results (only a
    /// non-null `true` is true) — the filter's selection update.
    #[must_use]
    pub fn truthy_mask(&self, n: usize) -> Vec<bool> {
        match self {
            EvalVec::Bool { data, nulls } => {
                (0..n).map(|i| data[i] && !is_null(nulls, i)).collect()
            }
            EvalVec::Const(v) => vec![truthy(v); n],
            EvalVec::Values(vs) => vs.iter().map(truthy).collect(),
            _ => vec![false; n],
        }
    }
}

fn is_null(nulls: &Option<Vec<bool>>, i: usize) -> bool {
    nulls.as_ref().is_some_and(|m| m[i])
}

impl Kernel {
    /// Evaluates the kernel over the selected rows of `chunk`
    /// (`selection` holds in-chunk row indexes).  `None` means *bail*:
    /// an unsupported type combination or a would-be evaluation error —
    /// the caller must re-evaluate the batch per-row.
    #[must_use]
    pub fn eval(&self, chunk: &ColumnarChunk, selection: &[u32]) -> Option<EvalVec> {
        eval_node(&self.node, chunk, selection)
    }

    /// When the kernel is a bare column read, returns its column slot.
    ///
    /// Bare reads are worth special-casing by the engine: the projected
    /// value can be borrowed straight from the source row, skipping both
    /// the column decode and the [`EvalVec`] gather.
    #[must_use]
    pub fn as_col(&self) -> Option<usize> {
        match self.node {
            KernelNode::Col(slot) => Some(slot),
            _ => None,
        }
    }
}

fn eval_node(node: &KernelNode, chunk: &ColumnarChunk, sel: &[u32]) -> Option<EvalVec> {
    match node {
        KernelNode::Const(v) => Some(EvalVec::Const(v.clone())),
        KernelNode::Col(slot) => Some(gather(chunk.column(*slot), sel)),
        KernelNode::Not(inner) => {
            let v = eval_node(inner, chunk, sel)?;
            let mut data = v.truthy_mask(sel.len());
            for b in &mut data {
                *b = !*b;
            }
            Some(EvalVec::Bool { data, nulls: None })
        }
        KernelNode::Binary { op, left, right } => {
            // Both operands are always evaluated first — `and`/`or` do
            // not short-circuit in the row evaluator either.
            let l = eval_node(left, chunk, sel)?;
            let r = eval_node(right, chunk, sel)?;
            eval_binary_vec(*op, &l, &r, sel.len())
        }
        KernelNode::Struct(fields) => {
            let mut evaluated = Vec::with_capacity(fields.len());
            for (name, node) in fields {
                evaluated.push((Arc::clone(name), eval_node(node, chunk, sel)?));
            }
            Some(assemble_structs(&evaluated, sel.len()))
        }
    }
}

/// Assembles one output struct per selected row from per-field result
/// vectors.  Field names were verified distinct at compile time.
fn assemble_structs(fields: &[(Arc<str>, EvalVec)], n: usize) -> EvalVec {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let fs: Vec<(Arc<str>, Value)> = fields
            .iter()
            .map(|(name, vec)| (Arc::clone(name), vec.value_at(i)))
            .collect();
        out.push(Value::Struct(StructValue::from_distinct_fields(fs)));
    }
    EvalVec::Values(out)
}

/// Gathers one column over the selection into a dense vector.
fn gather(column: &Column, sel: &[u32]) -> EvalVec {
    let pick = |m: &Option<Vec<bool>>| -> Option<Vec<bool>> {
        m.as_ref()
            .map(|m| sel.iter().map(|&i| m[i as usize]).collect())
    };
    match column {
        Column::Int { data, nulls } => EvalVec::Int {
            data: sel.iter().map(|&i| data[i as usize]).collect(),
            nulls: pick(nulls),
        },
        Column::Float { data, nulls } => EvalVec::Values(
            sel.iter()
                .map(|&i| {
                    if nulls.as_ref().is_some_and(|m| m[i as usize]) {
                        Value::Null
                    } else {
                        Value::Float(data[i as usize])
                    }
                })
                .collect(),
        ),
        Column::Bool { data, nulls } => EvalVec::Bool {
            data: sel.iter().map(|&i| data[i as usize]).collect(),
            nulls: pick(nulls),
        },
        Column::Str {
            values,
            codes,
            nulls,
        } => EvalVec::Str {
            values: sel
                .iter()
                .map(|&i| Arc::clone(&values[i as usize]))
                .collect(),
            codes: codes
                .as_ref()
                .map(|c| sel.iter().map(|&i| c[i as usize]).collect()),
            nulls: pick(nulls),
        },
        Column::Values(vs) => {
            EvalVec::Values(sel.iter().map(|&i| vs[i as usize].clone()).collect())
        }
    }
}

/// Vectorized [`eval_binary`]: typed fast paths where semantics are plain
/// `i64` machine ops, the real `eval_binary` element-wise everywhere
/// else, and `None` (bail to the row path) on any would-be error.
fn eval_binary_vec(op: ScalarOp, l: &EvalVec, r: &EvalVec, n: usize) -> Option<EvalVec> {
    use ScalarOp::{Add, And, Div, Mul, Or, Sub};
    match op {
        And => {
            let (lt, rt) = (l.truthy_mask(n), r.truthy_mask(n));
            Some(EvalVec::Bool {
                data: lt.iter().zip(&rt).map(|(a, b)| *a && *b).collect(),
                nulls: None,
            })
        }
        Or => {
            let (lt, rt) = (l.truthy_mask(n), r.truthy_mask(n));
            Some(EvalVec::Bool {
                data: lt.iter().zip(&rt).map(|(a, b)| *a || *b).collect(),
                nulls: None,
            })
        }
        _ if op.is_comparison() => match (l, r) {
            (EvalVec::Int { data, nulls: None }, EvalVec::Const(Value::Int(c))) => {
                Some(EvalVec::Bool {
                    data: data.iter().map(|&a| int_cmp(op, a, *c)).collect(),
                    nulls: None,
                })
            }
            (EvalVec::Const(Value::Int(c)), EvalVec::Int { data, nulls: None }) => {
                Some(EvalVec::Bool {
                    data: data.iter().map(|&b| int_cmp(op, *c, b)).collect(),
                    nulls: None,
                })
            }
            (
                EvalVec::Int {
                    data: a,
                    nulls: None,
                },
                EvalVec::Int {
                    data: b,
                    nulls: None,
                },
            ) => Some(EvalVec::Bool {
                data: a.iter().zip(b).map(|(&a, &b)| int_cmp(op, a, b)).collect(),
                nulls: None,
            }),
            _ => generic_binary(op, l, r, n),
        },
        Add | Sub | Mul | Div => match (l, r) {
            (EvalVec::Int { data, nulls: None }, EvalVec::Const(Value::Int(c))) => {
                int_arith(op, data.iter().copied(), std::iter::repeat(*c), n)
            }
            (EvalVec::Const(Value::Int(c)), EvalVec::Int { data, nulls: None }) => {
                int_arith(op, std::iter::repeat(*c), data.iter().copied(), n)
            }
            (
                EvalVec::Int {
                    data: a,
                    nulls: None,
                },
                EvalVec::Int {
                    data: b,
                    nulls: None,
                },
            ) => int_arith(op, a.iter().copied(), b.iter().copied(), n),
            _ => generic_binary(op, l, r, n),
        },
        _ => generic_binary(op, l, r, n),
    }
}

/// `i64` comparison with `eval_binary`'s semantics (null-free operands:
/// `total_cmp` on two ints is the machine comparison, `Eq` included).
fn int_cmp(op: ScalarOp, a: i64, b: i64) -> bool {
    match op {
        ScalarOp::Eq => a == b,
        ScalarOp::NotEq => a != b,
        ScalarOp::Lt => a < b,
        ScalarOp::Le => a <= b,
        ScalarOp::Gt => a > b,
        ScalarOp::Ge => a >= b,
        _ => unreachable!("comparison operator"),
    }
}

/// Null-free `i64` arithmetic.  Division bails on any zero divisor so the
/// row path reports [`crate::AlgebraError::DivisionByZero`] at the exact
/// offending row.  The non-division ops use the same plain operators as
/// `eval_binary` (identical overflow behaviour in every build profile).
fn int_arith(
    op: ScalarOp,
    a: impl Iterator<Item = i64>,
    b: impl Iterator<Item = i64>,
    n: usize,
) -> Option<EvalVec> {
    let mut data = Vec::with_capacity(n);
    for (a, b) in a.zip(b).take(n) {
        data.push(match op {
            ScalarOp::Add => a + b,
            ScalarOp::Sub => a - b,
            ScalarOp::Mul => a * b,
            ScalarOp::Div => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            _ => unreachable!("arithmetic operator"),
        });
    }
    Some(EvalVec::Int { data, nulls: None })
}

/// A kernel expression over *pairs* of rows from two chunks — the shape a
/// hash join's fused output projection needs: `struct(name: x.name,
/// total: x.salary + y.salary)` reads the probe-side chunk through one
/// binding and the build-side payload chunk through the other.
///
/// Evaluation takes two parallel selection vectors (`i`-th pair =
/// `left_sel[i]`-th row of the left chunk joined with `right_sel[i]`-th
/// row of the right chunk), so one matched probe row fanning out to many
/// build rows is just a repeated index — no row materialization at all.
#[derive(Debug, Clone)]
pub struct PairKernel {
    node: PairNode,
}

#[derive(Debug, Clone)]
enum PairNode {
    Const(Value),
    Left(usize),
    Right(usize),
    Binary {
        op: ScalarOp,
        left: Box<PairNode>,
        right: Box<PairNode>,
    },
    Not(Box<PairNode>),
    Struct(Vec<(Arc<str>, PairNode)>),
}

/// Compiles scalar expressions against the field layouts of *two* bound
/// sides (the join's left and right binding variables).
///
/// Like [`KernelBuilder`], the builder accumulates each side's referenced
/// fields so the engine decodes exactly those columns; the left/right
/// field lists may be seeded with fields another kernel already claimed
/// (e.g. the side's filter/key columns) so every kernel of one side
/// shares a single chunk layout.
#[derive(Debug)]
pub struct PairKernelBuilder {
    left: String,
    right: String,
    left_fields: Vec<Arc<str>>,
    right_fields: Vec<Arc<str>>,
}

impl PairKernelBuilder {
    /// A builder for pair rows `{left: …, right: …}`.  `None` when the
    /// two bindings collide — shadowing rules make such pairs ambiguous,
    /// so they stay on the per-row evaluator.
    #[must_use]
    pub fn new(left: &str, right: &str) -> Option<Self> {
        if left == right {
            return None;
        }
        Some(PairKernelBuilder {
            left: left.to_owned(),
            right: right.to_owned(),
            left_fields: Vec::new(),
            right_fields: Vec::new(),
        })
    }

    /// Pre-claims column slots on the left side (slots `0..fields.len()`
    /// map to `fields` in order).
    pub fn seed_left(&mut self, fields: &[Arc<str>]) {
        self.left_fields = fields.to_vec();
    }

    /// Pre-claims column slots on the right side.
    pub fn seed_right(&mut self, fields: &[Arc<str>]) {
        self.right_fields = fields.to_vec();
    }

    /// The left side's referenced fields, in column-slot order.
    #[must_use]
    pub fn left_fields(&self) -> &[Arc<str>] {
        &self.left_fields
    }

    /// The right side's referenced fields, in column-slot order.
    #[must_use]
    pub fn right_fields(&self) -> &[Arc<str>] {
        &self.right_fields
    }

    /// Compiles `expr`; `None` when any part of it falls outside the
    /// kernel subset or reads anything but the two bound sides.
    pub fn compile(&mut self, expr: &ScalarExpr) -> Option<PairKernel> {
        self.node(expr).map(|node| PairKernel { node })
    }

    fn node(&mut self, expr: &ScalarExpr) -> Option<PairNode> {
        match expr {
            ScalarExpr::Const(v) => Some(PairNode::Const(v.clone())),
            ScalarExpr::Field(base, field) => match base.as_ref() {
                ScalarExpr::Var(v) | ScalarExpr::Attr(v) if *v == self.left => {
                    Some(PairNode::Left(slot_in(&mut self.left_fields, field)))
                }
                ScalarExpr::Var(v) | ScalarExpr::Attr(v) if *v == self.right => {
                    Some(PairNode::Right(slot_in(&mut self.right_fields, field)))
                }
                _ => None,
            },
            ScalarExpr::Binary { op, left, right } => Some(PairNode::Binary {
                op: *op,
                left: Box::new(self.node(left)?),
                right: Box::new(self.node(right)?),
            }),
            ScalarExpr::Not(inner) => Some(PairNode::Not(Box::new(self.node(inner)?))),
            ScalarExpr::StructLit(fields) if distinct_names(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, e) in fields {
                    out.push((Arc::clone(name), self.node(e)?));
                }
                Some(PairNode::Struct(out))
            }
            ScalarExpr::Attr(_)
            | ScalarExpr::Var(_)
            | ScalarExpr::StructLit(_)
            | ScalarExpr::Agg(..)
            | ScalarExpr::Call(..) => None,
        }
    }
}

fn slot_in(fields: &mut Vec<Arc<str>>, name: &str) -> usize {
    if let Some(i) = fields.iter().position(|f| f.as_ref() == name) {
        return i;
    }
    fields.push(Arc::from(name));
    fields.len() - 1
}

impl PairKernel {
    /// Evaluates the kernel over `left_sel.len()` pairs.  `None` bails
    /// the batch to the per-row path, exactly like [`Kernel::eval`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when the two selection vectors disagree in
    /// length — they must index pairs in lock-step.
    #[must_use]
    pub fn eval(
        &self,
        left: &ColumnarChunk,
        left_sel: &[u32],
        right: &ColumnarChunk,
        right_sel: &[u32],
    ) -> Option<EvalVec> {
        debug_assert_eq!(left_sel.len(), right_sel.len());
        eval_pair_node(&self.node, left, left_sel, right, right_sel)
    }
}

fn eval_pair_node(
    node: &PairNode,
    lc: &ColumnarChunk,
    ls: &[u32],
    rc: &ColumnarChunk,
    rs: &[u32],
) -> Option<EvalVec> {
    match node {
        PairNode::Const(v) => Some(EvalVec::Const(v.clone())),
        PairNode::Left(slot) => Some(gather(lc.column(*slot), ls)),
        PairNode::Right(slot) => Some(gather(rc.column(*slot), rs)),
        PairNode::Not(inner) => {
            let v = eval_pair_node(inner, lc, ls, rc, rs)?;
            let mut data = v.truthy_mask(ls.len());
            for b in &mut data {
                *b = !*b;
            }
            Some(EvalVec::Bool { data, nulls: None })
        }
        PairNode::Binary { op, left, right } => {
            let l = eval_pair_node(left, lc, ls, rc, rs)?;
            let r = eval_pair_node(right, lc, ls, rc, rs)?;
            eval_binary_vec(*op, &l, &r, ls.len())
        }
        PairNode::Struct(fields) => {
            let mut evaluated = Vec::with_capacity(fields.len());
            for (name, node) in fields {
                evaluated.push((Arc::clone(name), eval_pair_node(node, lc, ls, rc, rs)?));
            }
            Some(assemble_structs(&evaluated, ls.len()))
        }
    }
}

/// The exactness anchor: element pairs outside the typed fast paths run
/// through the row evaluator's own [`eval_binary`], so floats (NaN,
/// `total_cmp`, int/float promotion), nulls, strings and type errors
/// behave identically by construction.  Errors bail the whole batch.
fn generic_binary(op: ScalarOp, l: &EvalVec, r: &EvalVec, n: usize) -> Option<EvalVec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = l.value_at(i);
        let b = r.value_at(i);
        out.push(eval_binary(op, &a, &b).ok()?);
    }
    Some(EvalVec::Values(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_value::{ChunkBuilder, StructValue};

    fn rows(values: Vec<Value>) -> Vec<Value> {
        values
            .into_iter()
            .map(|v| Value::Struct(StructValue::new(vec![("v", v)]).unwrap()))
            .collect()
    }

    fn eval_over(
        expr: &ScalarExpr,
        binding: Option<&str>,
        data: Vec<Value>,
    ) -> Option<(EvalVec, usize)> {
        let mut kb = KernelBuilder::new(binding);
        let kernel = kb.compile(expr)?;
        let mut cb = ChunkBuilder::new();
        for f in kb.fields() {
            cb.add_field(Arc::clone(f));
        }
        let rows = rows(data);
        let chunk = cb.build(&rows)?;
        let sel: Vec<u32> = (0..rows.len() as u32).collect();
        let n = sel.len();
        kernel.eval(&chunk, &sel).map(|v| (v, n))
    }

    #[test]
    fn int_comparison_fast_path_matches_eval_binary() {
        let expr = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("v"),
            ScalarExpr::constant(5i64),
        );
        let data = vec![Value::Int(3), Value::Int(5), Value::Int(9)];
        let (vec, n) = eval_over(&expr, None, data).unwrap();
        assert_eq!(vec.truthy_mask(n), vec![false, false, true]);
    }

    #[test]
    fn nulls_route_through_the_generic_path_and_compare_false() {
        let expr = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("v"),
            ScalarExpr::constant(5i64),
        );
        let data = vec![Value::Null, Value::Int(9)];
        let (vec, n) = eval_over(&expr, None, data).unwrap();
        assert_eq!(vec.truthy_mask(n), vec![false, true]);
    }

    #[test]
    fn division_by_zero_bails_instead_of_erroring() {
        let expr = ScalarExpr::binary(
            ScalarOp::Div,
            ScalarExpr::constant(10i64),
            ScalarExpr::attr("v"),
        );
        assert!(eval_over(&expr, None, vec![Value::Int(2), Value::Int(0)]).is_none());
    }

    #[test]
    fn bound_field_paths_compile_and_unbound_names_do_not_under_binding() {
        let mut kb = KernelBuilder::new(Some("x"));
        assert!(kb.compile(&ScalarExpr::var_field("x", "salary")).is_some());
        assert!(kb.compile(&ScalarExpr::var_field("y", "salary")).is_none());
        assert!(kb.compile(&ScalarExpr::attr("salary")).is_none());
        assert_eq!(kb.fields().len(), 1);
    }

    #[test]
    fn struct_literal_maps_compile_to_per_field_kernels() {
        let expr = ScalarExpr::StructLit(vec![
            ("v".into(), ScalarExpr::var_field("x", "v")),
            (
                "twice".into(),
                ScalarExpr::binary(
                    ScalarOp::Mul,
                    ScalarExpr::var_field("x", "v"),
                    ScalarExpr::constant(2i64),
                ),
            ),
        ]);
        let mut kb = KernelBuilder::new(Some("x"));
        let kernel = kb.compile(&expr).expect("struct literal compiles");
        let mut cb = ChunkBuilder::new();
        for f in kb.fields() {
            cb.add_field(Arc::clone(f));
        }
        let rows = rows(vec![Value::Int(3), Value::Int(5)]);
        let chunk = cb.build(&rows).unwrap();
        let out = kernel.eval(&chunk, &[0, 1]).unwrap();
        let Value::Struct(s) = out.value_at(1) else {
            panic!("struct output");
        };
        assert_eq!(s.field("v").unwrap(), &Value::Int(5));
        assert_eq!(s.field("twice").unwrap(), &Value::Int(10));
    }

    #[test]
    fn duplicate_struct_field_names_refuse_to_compile() {
        let expr = ScalarExpr::StructLit(vec![
            ("a".into(), ScalarExpr::constant(1i64)),
            ("a".into(), ScalarExpr::constant(2i64)),
        ]);
        assert!(KernelBuilder::new(Some("x")).compile(&expr).is_none());
    }

    #[test]
    fn pair_kernel_projects_across_two_chunks() {
        // struct(name: x.v, total: x.v + y.v) over pairs of (x, y) rows.
        let expr = ScalarExpr::StructLit(vec![
            ("l".into(), ScalarExpr::var_field("x", "v")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "v"),
                    ScalarExpr::var_field("y", "v"),
                ),
            ),
        ]);
        let mut pb = PairKernelBuilder::new("x", "y").unwrap();
        let kernel = pb.compile(&expr).expect("pair projection compiles");
        let build_chunk = |data: Vec<Value>, fields: &[Arc<str>]| {
            let mut cb = ChunkBuilder::new();
            for f in fields {
                cb.add_field(Arc::clone(f));
            }
            cb.build(&rows(data)).unwrap()
        };
        let lc = build_chunk(vec![Value::Int(10), Value::Int(20)], pb.left_fields());
        let rc = build_chunk(vec![Value::Int(1), Value::Int(2)], pb.right_fields());
        // Pairs: (left 0, right 1), (left 1, right 0), (left 1, right 1).
        let out = kernel.eval(&lc, &[0, 1, 1], &rc, &[1, 0, 1]).unwrap();
        let totals: Vec<Value> = (0..3)
            .map(|i| {
                let Value::Struct(s) = out.value_at(i) else {
                    panic!("struct output");
                };
                s.field("total").unwrap().clone()
            })
            .collect();
        assert_eq!(totals, vec![Value::Int(12), Value::Int(21), Value::Int(22)]);
    }

    #[test]
    fn pair_kernel_refuses_colliding_bindings_and_foreign_vars() {
        assert!(PairKernelBuilder::new("x", "x").is_none());
        let mut pb = PairKernelBuilder::new("x", "y").unwrap();
        assert!(pb.compile(&ScalarExpr::var_field("z", "v")).is_none());
        assert!(pb.compile(&ScalarExpr::attr("v")).is_none());
    }

    #[test]
    fn pair_kernel_seeded_slots_align_with_preclaimed_fields() {
        let mut pb = PairKernelBuilder::new("x", "y").unwrap();
        pb.seed_left(&[Arc::from("id"), Arc::from("v")]);
        pb.compile(&ScalarExpr::var_field("x", "v")).unwrap();
        // "v" reuses the pre-claimed slot instead of appending.
        assert_eq!(pb.left_fields().len(), 2);
    }

    #[test]
    fn float_semantics_funnel_through_eval_binary() {
        // NaN under total_cmp sorts above every float: NaN > 1e300 holds.
        let expr = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("v"),
            ScalarExpr::constant(1e300f64),
        );
        let data = vec![Value::Float(f64::NAN), Value::Float(1.0)];
        let (vec, n) = eval_over(&expr, None, data).unwrap();
        assert_eq!(vec.truthy_mask(n), vec![true, false]);
    }
}
