//! Wrapper capability description (§1.4, §3.2).
//!
//! A DISCO wrapper chooses a subset of logical operators to support and
//! advertises it through the `submit-functionality` call.  The paper
//! describes the most general form of the answer as a *grammar* over the
//! operator language; this module provides both:
//!
//! * [`CapabilitySet`] — the operational representation the optimizer
//!   consults (which operators, whether compositions are allowed, which
//!   comparison operators a selection predicate may use), and
//! * [`CapabilityGrammar`] — the paper-style grammar rendering of a
//!   capability set, with a parser so grammars can be exchanged as text
//!   between wrapper and mediator exactly as §3.2 describes.
//!
//! [`CapabilitySet::accepts`] is the recogniser the optimizer's
//! transformation rules call before pushing an expression through
//! `submit`.

use std::collections::BTreeSet;
use std::fmt;

use crate::logical::LogicalExpr;
use crate::scalar::ScalarOp;
use crate::{AlgebraError, Result};

/// The logical operators a wrapper may support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperatorKind {
    /// `get(SOURCE)` — scan a named collection.
    Get,
    /// `select(PREDICATE, e)` — filtering.
    Select,
    /// `project(ATTRIBUTE…, e)` — projection onto attributes.
    Project,
    /// `join(e1, e2, ATTRIBUTE…)` — equi-join inside the source.
    Join,
}

impl OperatorKind {
    /// The terminal symbol used in capability grammars.
    #[must_use]
    pub fn terminal(&self) -> &'static str {
        match self {
            OperatorKind::Get => "get",
            OperatorKind::Select => "select",
            OperatorKind::Project => "project",
            OperatorKind::Join => "join",
        }
    }

    /// Parses a terminal symbol.
    #[must_use]
    pub fn from_terminal(s: &str) -> Option<OperatorKind> {
        match s {
            "get" => Some(OperatorKind::Get),
            "select" => Some(OperatorKind::Select),
            "project" => Some(OperatorKind::Project),
            "join" => Some(OperatorKind::Join),
            _ => None,
        }
    }
}

/// The capabilities a wrapper advertises.
///
/// # Examples
///
/// ```
/// use disco_algebra::{CapabilitySet, OperatorKind, LogicalExpr, ScalarExpr, ScalarOp};
///
/// // The §3.2 example: r0's wrapper understands get, project and their
/// // composition; r1's wrapper understands only get.
/// let w_r0 = CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true);
/// let w_r1 = CapabilitySet::get_only();
///
/// let pushed = LogicalExpr::get("person0").project(["name"]);
/// assert!(w_r0.accepts(&pushed).is_ok());
/// assert!(w_r1.accepts(&pushed).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilitySet {
    operators: BTreeSet<OperatorKind>,
    compose: bool,
    /// `None` means every comparison operator is supported.
    comparisons: Option<BTreeSet<ComparisonKind>>,
}

/// Comparison operators a wrapper may restrict selections to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComparisonKind {
    /// `=`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ComparisonKind {
    /// Converts a scalar comparison operator.
    #[must_use]
    pub fn from_scalar(op: ScalarOp) -> Option<ComparisonKind> {
        match op {
            ScalarOp::Eq => Some(ComparisonKind::Eq),
            ScalarOp::NotEq => Some(ComparisonKind::NotEq),
            ScalarOp::Lt => Some(ComparisonKind::Lt),
            ScalarOp::Le => Some(ComparisonKind::Le),
            ScalarOp::Gt => Some(ComparisonKind::Gt),
            ScalarOp::Ge => Some(ComparisonKind::Ge),
            _ => None,
        }
    }
}

impl CapabilitySet {
    /// Creates a capability set supporting the given operators, without
    /// composition.
    pub fn new<I: IntoIterator<Item = OperatorKind>>(operators: I) -> Self {
        CapabilitySet {
            operators: operators.into_iter().collect(),
            compose: false,
            comparisons: None,
        }
    }

    /// The minimal wrapper: only `get` (fetch a whole collection).
    #[must_use]
    pub fn get_only() -> Self {
        CapabilitySet::new([OperatorKind::Get])
    }

    /// A wrapper supporting get/select/project/join and composition — a
    /// full relational (SQL-like) source.
    #[must_use]
    pub fn full() -> Self {
        CapabilitySet::new([
            OperatorKind::Get,
            OperatorKind::Select,
            OperatorKind::Project,
            OperatorKind::Join,
        ])
        .with_composition(true)
    }

    /// Enables or disables composition of the supported operators.
    #[must_use]
    pub fn with_composition(mut self, compose: bool) -> Self {
        self.compose = compose;
        self
    }

    /// Restricts selection predicates to the given comparison operators.
    #[must_use]
    pub fn with_comparisons<I: IntoIterator<Item = ComparisonKind>>(
        mut self,
        comparisons: I,
    ) -> Self {
        self.comparisons = Some(comparisons.into_iter().collect());
        self
    }

    /// Returns `true` if the operator is supported.
    #[must_use]
    pub fn supports(&self, op: OperatorKind) -> bool {
        self.operators.contains(&op)
    }

    /// Returns `true` if compositions of supported operators are allowed.
    #[must_use]
    pub fn supports_composition(&self) -> bool {
        self.compose
    }

    /// The supported operators, in a stable order.
    #[must_use]
    pub fn operators(&self) -> Vec<OperatorKind> {
        self.operators.iter().copied().collect()
    }

    /// Returns `true` if the comparison operator may appear in a pushed
    /// selection predicate.
    #[must_use]
    pub fn supports_comparison(&self, cmp: ComparisonKind) -> bool {
        match &self.comparisons {
            None => true,
            Some(set) => set.contains(&cmp),
        }
    }

    /// Checks that `expr` — the expression to be shipped through `submit`
    /// — only uses supported operators, supported comparisons, and
    /// composition where allowed.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::CapabilityViolation`] naming the offending
    /// operator.
    pub fn accepts(&self, expr: &LogicalExpr) -> Result<()> {
        self.accepts_named(expr, "<wrapper>")
    }

    /// Like [`CapabilitySet::accepts`] but reports `wrapper_name` in errors.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::CapabilityViolation`].
    pub fn accepts_named(&self, expr: &LogicalExpr, wrapper_name: &str) -> Result<()> {
        self.check(expr, wrapper_name, true)
    }

    fn violation(&self, operator: &str, wrapper: &str) -> AlgebraError {
        AlgebraError::CapabilityViolation {
            operator: operator.to_owned(),
            wrapper: wrapper.to_owned(),
        }
    }

    fn check(&self, expr: &LogicalExpr, wrapper: &str, top: bool) -> Result<()> {
        match expr {
            LogicalExpr::Get { .. } => {
                if self.supports(OperatorKind::Get) {
                    Ok(())
                } else {
                    Err(self.violation("get", wrapper))
                }
            }
            LogicalExpr::Filter { input, predicate } => {
                if !self.supports(OperatorKind::Select) {
                    return Err(self.violation("select", wrapper));
                }
                if !predicate.is_pushable() {
                    return Err(self.violation("select(non-pushable predicate)", wrapper));
                }
                for op in predicate.comparison_ops() {
                    if let Some(cmp) = ComparisonKind::from_scalar(op) {
                        if !self.supports_comparison(cmp) {
                            return Err(
                                self.violation(&format!("comparison {}", op.symbol()), wrapper)
                            );
                        }
                    }
                }
                self.check_child(input, wrapper, top)
            }
            LogicalExpr::Project { input, .. } => {
                if !self.supports(OperatorKind::Project) {
                    return Err(self.violation("project", wrapper));
                }
                self.check_child(input, wrapper, top)
            }
            LogicalExpr::SourceJoin { left, right, .. } => {
                if !self.supports(OperatorKind::Join) {
                    return Err(self.violation("join", wrapper));
                }
                self.check_child(left, wrapper, top)?;
                self.check_child(right, wrapper, top)
            }
            other => Err(self.violation(other.op_name(), wrapper)),
        }
    }

    fn check_child(&self, child: &LogicalExpr, wrapper: &str, parent_is_top: bool) -> Result<()> {
        // Without composition support, a non-get operator may only be
        // applied directly to a get — i.e. at most one operator above the
        // source (the paper's grammar with `SOURCE` in place of `s`).
        if !self.compose && !matches!(child, LogicalExpr::Get { .. }) {
            return Err(self.violation(&format!("composition over {}", child.op_name()), wrapper));
        }
        let _ = parent_is_top;
        self.check(child, wrapper, false)
    }

    /// Renders the paper-style grammar describing this capability set.
    #[must_use]
    pub fn to_grammar(&self) -> CapabilityGrammar {
        let mut productions = Vec::new();
        let nonterminals: Vec<(OperatorKind, char)> = self
            .operators
            .iter()
            .zip(['b', 'c', 'd', 'e'])
            .map(|(op, nt)| (*op, nt))
            .collect();
        for (_, nt) in &nonterminals {
            productions.push(("a".to_owned(), vec![nt.to_string()]));
        }
        let source_symbol = if self.compose { "s" } else { "SOURCE" };
        for (op, nt) in &nonterminals {
            let rhs: Vec<String> = match op {
                OperatorKind::Get => vec![
                    "get".into(),
                    "OPEN".into(),
                    source_symbol.into(),
                    "CLOSE".into(),
                ],
                OperatorKind::Project => vec![
                    "project".into(),
                    "OPEN".into(),
                    "ATTRIBUTE".into(),
                    "COMMA".into(),
                    source_symbol.into(),
                    "CLOSE".into(),
                ],
                OperatorKind::Select => vec![
                    "select".into(),
                    "OPEN".into(),
                    "PREDICATE".into(),
                    "COMMA".into(),
                    source_symbol.into(),
                    "CLOSE".into(),
                ],
                OperatorKind::Join => vec![
                    "join".into(),
                    "OPEN".into(),
                    source_symbol.into(),
                    "COMMA".into(),
                    source_symbol.into(),
                    "COMMA".into(),
                    "ATTRIBUTE".into(),
                    "CLOSE".into(),
                ],
            };
            productions.push((nt.to_string(), rhs));
        }
        if self.compose {
            for (_, nt) in &nonterminals {
                productions.push(("s".to_owned(), vec![nt.to_string()]));
            }
            productions.push(("s".to_owned(), vec!["SOURCE".into()]));
        }
        CapabilityGrammar { productions }
    }

    /// Reconstructs a capability set from a grammar (the inverse of
    /// [`CapabilitySet::to_grammar`] for grammars in the paper's shape).
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::InvalidGrammar`] when the text cannot be
    /// parsed.
    pub fn from_grammar(grammar: &CapabilityGrammar) -> Result<CapabilitySet> {
        let mut operators = BTreeSet::new();
        let mut compose = false;
        for (lhs, rhs) in &grammar.productions {
            if let Some(first) = rhs.first() {
                if let Some(op) = OperatorKind::from_terminal(first) {
                    operators.insert(op);
                }
            }
            if lhs == "s" || rhs.iter().any(|sym| sym == "s") {
                compose = true;
            }
        }
        if operators.is_empty() {
            return Err(AlgebraError::InvalidGrammar(
                "grammar names no supported operator".into(),
            ));
        }
        Ok(CapabilitySet {
            operators,
            compose,
            comparisons: None,
        })
    }
}

/// A paper-style capability grammar: a list of productions
/// `lhs :- sym sym …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilityGrammar {
    productions: Vec<(String, Vec<String>)>,
}

impl CapabilityGrammar {
    /// The productions, in order.
    #[must_use]
    pub fn productions(&self) -> &[(String, Vec<String>)] {
        &self.productions
    }

    /// Parses the textual form (one production per line, `lhs :- rhs…`).
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::InvalidGrammar`] on malformed lines.
    pub fn parse(text: &str) -> Result<CapabilityGrammar> {
        let mut productions = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line
                .split_once(":-")
                .ok_or_else(|| AlgebraError::InvalidGrammar(format!("missing ':-' in: {line}")))?;
            let lhs = lhs.trim().to_owned();
            if lhs.is_empty() {
                return Err(AlgebraError::InvalidGrammar(format!(
                    "empty lhs in: {line}"
                )));
            }
            let rhs: Vec<String> = rhs.split_whitespace().map(ToOwned::to_owned).collect();
            if rhs.is_empty() {
                return Err(AlgebraError::InvalidGrammar(format!(
                    "empty rhs in: {line}"
                )));
            }
            productions.push((lhs, rhs));
        }
        if productions.is_empty() {
            return Err(AlgebraError::InvalidGrammar("empty grammar".into()));
        }
        Ok(CapabilityGrammar { productions })
    }
}

impl fmt::Display for CapabilityGrammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (lhs, rhs) in &self.productions {
            writeln!(f, "{lhs} :- {}", rhs.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarExpr;

    fn name_project(input: LogicalExpr) -> LogicalExpr {
        input.project(["name"])
    }

    #[test]
    fn get_only_wrapper_rejects_everything_else() {
        let caps = CapabilitySet::get_only();
        assert!(caps.accepts(&LogicalExpr::get("person0")).is_ok());
        assert!(caps
            .accepts(&name_project(LogicalExpr::get("person0")))
            .is_err());
        let filter = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        ));
        assert!(caps.accepts(&filter).is_err());
    }

    #[test]
    fn paper_section_3_2_example() {
        // r0: {get, project, compose}; r1: {get} only.
        let r0 =
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true);
        let r1 = CapabilitySet::get_only();
        let pushed = name_project(LogicalExpr::get("person0"));
        assert!(r0.accepts(&pushed).is_ok());
        assert!(r1.accepts(&pushed).is_err());
        assert!(r1.accepts(&LogicalExpr::get("person1")).is_ok());
    }

    #[test]
    fn composition_flag_controls_nesting() {
        // A wrapper that understands get and project *but not their
        // composition* (the first grammar in §3.2) accepts project(get)
        // — one operator over the source — but not project(select(get)).
        let no_compose = CapabilitySet::new([
            OperatorKind::Get,
            OperatorKind::Project,
            OperatorKind::Select,
        ]);
        let one_level = name_project(LogicalExpr::get("r"));
        assert!(no_compose.accepts(&one_level).is_ok());
        let nested = name_project(LogicalExpr::get("r").filter(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("a"),
            ScalarExpr::constant(1i64),
        )));
        assert!(no_compose.accepts(&nested).is_err());
        let with_compose = no_compose.clone().with_composition(true);
        assert!(with_compose.accepts(&nested).is_ok());
    }

    #[test]
    fn join_pushdown_requires_join_capability() {
        // The §3.2 employee/manager example.
        let join = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("employee0")),
            right: Box::new(LogicalExpr::get("manager0")),
            on: vec![("dept".into(), "dept".into())],
        };
        assert!(CapabilitySet::full().accepts(&join).is_ok());
        let no_join = CapabilitySet::new([
            OperatorKind::Get,
            OperatorKind::Select,
            OperatorKind::Project,
        ])
        .with_composition(true);
        assert!(no_join.accepts(&join).is_err());
    }

    #[test]
    fn comparison_restrictions_are_enforced() {
        let eq_only = CapabilitySet::new([OperatorKind::Get, OperatorKind::Select])
            .with_composition(true)
            .with_comparisons([ComparisonKind::Eq]);
        let eq_filter = LogicalExpr::get("r").filter(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("a"),
            ScalarExpr::constant(1i64),
        ));
        let gt_filter = LogicalExpr::get("r").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("a"),
            ScalarExpr::constant(1i64),
        ));
        assert!(eq_only.accepts(&eq_filter).is_ok());
        assert!(eq_only.accepts(&gt_filter).is_err());
    }

    #[test]
    fn non_pushable_predicates_are_rejected() {
        let caps = CapabilitySet::full();
        let filter = LogicalExpr::get("r").filter(ScalarExpr::var_field("x", "salary"));
        assert!(caps.accepts(&filter).is_err());
        // Mediator-only operators are always rejected.
        let map = LogicalExpr::get("r").bind("x");
        assert!(caps.accepts(&map).is_err());
    }

    #[test]
    fn grammar_rendering_matches_paper_shapes() {
        // Without composition: project/get over SOURCE.
        let no_compose = CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]);
        let text = no_compose.to_grammar().to_string();
        assert!(text.contains("a :- b"));
        assert!(text.contains("a :- c"));
        assert!(text.contains("b :- get OPEN SOURCE CLOSE"));
        assert!(text.contains("c :- project OPEN ATTRIBUTE COMMA SOURCE CLOSE"));
        assert!(!text.contains("s :-"));
        // With composition: the `s` nonterminal appears.
        let compose = no_compose.with_composition(true);
        let text = compose.to_grammar().to_string();
        assert!(text.contains("b :- get OPEN s CLOSE"));
        assert!(text.contains("s :- b"));
        assert!(text.contains("s :- SOURCE"));
    }

    #[test]
    fn grammar_round_trips_to_capability_set() {
        for caps in [
            CapabilitySet::get_only(),
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]),
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true),
            CapabilitySet::full(),
        ] {
            let grammar = caps.to_grammar();
            let parsed_text = CapabilityGrammar::parse(&grammar.to_string()).unwrap();
            let recovered = CapabilitySet::from_grammar(&parsed_text).unwrap();
            assert_eq!(recovered.operators(), caps.operators());
            assert_eq!(
                recovered.supports_composition(),
                caps.supports_composition()
            );
        }
    }

    #[test]
    fn grammar_parse_errors() {
        assert!(CapabilityGrammar::parse("").is_err());
        assert!(CapabilityGrammar::parse("nonsense line").is_err());
        assert!(CapabilityGrammar::parse("a :- ").is_err());
        assert!(CapabilityGrammar::parse(" :- b").is_err());
        let g = CapabilityGrammar::parse("a :- b\nb :- frobnicate OPEN SOURCE CLOSE").unwrap();
        assert!(CapabilitySet::from_grammar(&g).is_err());
    }
}
