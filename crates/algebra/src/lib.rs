//! # disco-algebra
//!
//! The query algebra of the DISCO mediator (§3 of the paper): the logical
//! operators including the DISCO-specific `submit(source, expression)`
//! operator, the transformation rules that push work onto wrappers, the
//! wrapper capability description (operator sets and paper-style
//! grammars), the physical algebra including the `exec` algorithm, the
//! implementation rules, and the conversion from plans back to OQL that
//! the partial-evaluation semantics require.
//!
//! # Examples
//!
//! Building and pushing the paper's §3.2 plan:
//!
//! ```
//! use disco_algebra::{LogicalExpr, CapabilitySet, OperatorKind, rules};
//! use std::collections::BTreeMap;
//!
//! // union(project(name, submit(r0, get(person0))),
//! //       project(name, submit(r1, get(person1))))
//! let plan = LogicalExpr::Union(vec![
//!     LogicalExpr::get("person0").submit("r0", "w_r0", "person0").project(["name"]),
//!     LogicalExpr::get("person1").submit("r1", "w_r1", "person1").project(["name"]),
//! ]);
//!
//! // r0's wrapper understands {get, project, compose}; r1's only {get}.
//! let mut caps = BTreeMap::new();
//! caps.insert("w_r0".to_owned(),
//!     CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true));
//! caps.insert("w_r1".to_owned(), CapabilitySet::get_only());
//!
//! let pushed = rules::push_to_wrappers(&plan, &caps);
//! assert_eq!(
//!     pushed.to_string(),
//!     "union(submit(r0, project(name, get(person0))), project(name, submit(r1, get(person1))))"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capability;
mod error;
mod implementation;
pub mod kernel;
mod logical;
mod physical;
pub mod rules;
mod scalar;
mod to_oql;

pub use capability::{CapabilityGrammar, CapabilitySet, ComparisonKind, OperatorKind};
pub use error::AlgebraError;
pub use implementation::{bound_vars, lower, referenced_vars};
pub use kernel::{EvalVec, Kernel, KernelBuilder, PairKernel, PairKernelBuilder};
pub use logical::{data_of, LogicalExpr};
pub use physical::{ExchangeBehavior, PhysicalExpr, PipelineBehavior};
pub use rules::CapabilityLookup;
pub use scalar::{
    eval_binary, eval_scalar, eval_scalar_env, eval_scalar_with, truthy, AggKind, Env, ScalarExpr,
    ScalarOp, SubqueryEval,
};
pub use to_oql::{
    agg_from_oql, agg_to_oql, logical_to_oql, scalar_op_from_oql, scalar_op_to_oql, scalar_to_oql,
};

/// Convenience result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;
