//! Conversion from the logical algebra back to OQL.
//!
//! The partial-evaluation semantics (§4) require that "each logical
//! operation has a corresponding OQL expression": when query processing
//! stops at the deadline, the remaining plan is converted back into a
//! high-level query and returned — the answer to the query *is* a query.
//! This module provides that final conversion step; together with
//! [`crate::physical::PhysicalExpr::to_logical`] and the `disco-oql`
//! printer it closes the loop physical → logical → OQL text.

use disco_oql::ast::{AggFunc, BinaryOp, Expr as OqlExpr, FromBinding, SelectExpr};

use crate::logical::LogicalExpr;
use crate::scalar::{AggKind, ScalarExpr, ScalarOp};

/// Converts a logical plan into an OQL expression.
///
/// The conversion is total: every operator has an OQL rendering.  Shapes
/// that OQL cannot express directly (a source-side join kept in a
/// residual plan) are rendered as a generic `join(...)` call so the text
/// still parses.
#[must_use]
pub fn logical_to_oql(expr: &LogicalExpr) -> OqlExpr {
    match expr {
        LogicalExpr::Get { collection } => OqlExpr::Ident(collection.clone()),
        LogicalExpr::Data(bag) => {
            OqlExpr::BagConstruct(bag.iter().map(|v| OqlExpr::Literal(v.clone())).collect())
        }
        // `submit` is location metadata; in OQL the location is implied by
        // the extent name, so the wrapper boundary disappears in the text.
        LogicalExpr::Submit { expr, .. } => logical_to_oql(expr),
        LogicalExpr::Union(items) => OqlExpr::Union(items.iter().map(logical_to_oql).collect()),
        LogicalExpr::Flatten(inner) => OqlExpr::Flatten(Box::new(logical_to_oql(inner))),
        LogicalExpr::Aggregate { func, input } => {
            OqlExpr::Aggregate(agg_to_oql(*func), Box::new(logical_to_oql(input)))
        }
        LogicalExpr::Distinct(inner) => match logical_to_oql(inner) {
            OqlExpr::Select(mut sel) => {
                sel.distinct = true;
                OqlExpr::Select(sel)
            }
            other => OqlExpr::Select(SelectExpr {
                distinct: true,
                projection: Box::new(OqlExpr::ident("t")),
                bindings: vec![FromBinding {
                    var: "t".into(),
                    collection: other,
                }],
                where_clause: None,
            }),
        },
        LogicalExpr::MapProject { input, projection } => {
            let (bindings, predicate) = select_parts(input);
            OqlExpr::Select(SelectExpr {
                distinct: false,
                projection: Box::new(scalar_to_oql(projection, None)),
                bindings,
                where_clause: predicate.map(Box::new),
            })
        }
        LogicalExpr::Bind { .. } | LogicalExpr::Join { .. } => {
            // An environment-producing plan with no projection above it:
            // render as `select <first var> from …`.
            let (bindings, predicate) = select_parts(expr);
            let proj = bindings
                .first()
                .map_or_else(|| OqlExpr::ident("t"), |b| OqlExpr::Ident(b.var.clone()));
            OqlExpr::Select(SelectExpr {
                distinct: false,
                projection: Box::new(proj),
                bindings,
                where_clause: predicate.map(Box::new),
            })
        }
        LogicalExpr::Filter { input, predicate } => {
            // Source-form filter: `select t from t in <input> where p[t]`.
            OqlExpr::Select(SelectExpr {
                distinct: false,
                projection: Box::new(OqlExpr::ident("t")),
                bindings: vec![FromBinding {
                    var: "t".into(),
                    collection: logical_to_oql(input),
                }],
                where_clause: Some(Box::new(scalar_to_oql(predicate, Some("t")))),
            })
        }
        LogicalExpr::Project { input, columns } => {
            // Merge a directly nested source filter into the same select.
            let (collection, where_clause) = match input.as_ref() {
                LogicalExpr::Filter {
                    input: inner,
                    predicate,
                } => (
                    logical_to_oql(inner),
                    Some(Box::new(scalar_to_oql(predicate, Some("t")))),
                ),
                other => (logical_to_oql(other), None),
            };
            let projection = if columns.len() == 1 {
                OqlExpr::ident("t").path(columns[0].clone())
            } else {
                OqlExpr::StructConstruct(
                    columns
                        .iter()
                        .map(|c| (c.clone(), OqlExpr::ident("t").path(c.clone())))
                        .collect(),
                )
            };
            OqlExpr::Select(SelectExpr {
                distinct: false,
                projection: Box::new(projection),
                bindings: vec![FromBinding {
                    var: "t".into(),
                    collection,
                }],
                where_clause,
            })
        }
        LogicalExpr::SourceJoin { left, right, on } => {
            let cond = on
                .iter()
                .map(|(l, r)| format!("{l}={r}"))
                .collect::<Vec<_>>()
                .join(",");
            OqlExpr::Call(
                "join".into(),
                vec![
                    logical_to_oql(left),
                    logical_to_oql(right),
                    OqlExpr::literal(cond),
                ],
            )
        }
    }
}

/// Decomposes an environment-producing plan (binds, mediator joins,
/// env-form filters) into `from` bindings plus a combined predicate.
fn select_parts(expr: &LogicalExpr) -> (Vec<FromBinding>, Option<OqlExpr>) {
    match expr {
        LogicalExpr::Bind { var, input } => match peel_transparent(input) {
            // Absorb a source-form filter under the bind into the where
            // clause, re-qualifying attributes with the bound variable so
            // the residual reads like the original query.
            LogicalExpr::Filter {
                input: inner,
                predicate,
            } if predicate.is_pushable() => (
                vec![FromBinding {
                    var: var.clone(),
                    collection: logical_to_oql(peel_transparent(inner)),
                }],
                Some(scalar_to_oql(predicate, Some(var))),
            ),
            other => (
                vec![FromBinding {
                    var: var.clone(),
                    collection: logical_to_oql(other),
                }],
                None,
            ),
        },
        LogicalExpr::Filter { input, predicate } => {
            let (bindings, existing) = select_parts(input);
            let this = scalar_to_oql(predicate, None);
            (bindings, Some(combine_and(existing, this)))
        }
        LogicalExpr::Join {
            left,
            right,
            predicate,
        } => {
            let (mut bindings, left_pred) = select_parts(left);
            let (right_bindings, right_pred) = select_parts(right);
            bindings.extend(right_bindings);
            let mut combined = left_pred;
            if let Some(rp) = right_pred {
                combined = Some(combine_and(combined, rp));
            }
            if let Some(jp) = predicate {
                combined = Some(combine_and(combined, scalar_to_oql(jp, None)));
            }
            (bindings, combined)
        }
        other => (
            vec![FromBinding {
                var: "t".into(),
                collection: logical_to_oql(other),
            }],
            None,
        ),
    }
}

/// Skips layers that do not change which rows a range variable sees when
/// printing residual queries: the `submit` location marker and narrowing
/// projections inserted by the compiler (the enclosing query only ever
/// references the projected attributes, so dropping the projection from the
/// printed text is sound and matches the paper's residual examples).
fn peel_transparent(expr: &LogicalExpr) -> &LogicalExpr {
    match expr {
        LogicalExpr::Submit { expr, .. } => peel_transparent(expr),
        LogicalExpr::Project { input, .. } => peel_transparent(input),
        other => other,
    }
}

fn combine_and(existing: Option<OqlExpr>, new: OqlExpr) -> OqlExpr {
    match existing {
        Some(e) => OqlExpr::binary(BinaryOp::And, e, new),
        None => new,
    }
}

/// Converts a scalar expression to OQL.  When `attr_var` is given, bare
/// source attributes are qualified as `attr_var.attribute`.
#[must_use]
pub fn scalar_to_oql(expr: &ScalarExpr, attr_var: Option<&str>) -> OqlExpr {
    match expr {
        ScalarExpr::Const(v) => OqlExpr::Literal(v.clone()),
        ScalarExpr::Attr(a) => match attr_var {
            Some(v) => OqlExpr::ident(v).path(a.clone()),
            None => OqlExpr::Ident(a.clone()),
        },
        ScalarExpr::Var(v) => OqlExpr::Ident(v.clone()),
        ScalarExpr::Field(base, field) => {
            OqlExpr::Path(Box::new(scalar_to_oql(base, attr_var)), field.clone())
        }
        ScalarExpr::Binary { op, left, right } => OqlExpr::binary(
            scalar_op_to_oql(*op),
            scalar_to_oql(left, attr_var),
            scalar_to_oql(right, attr_var),
        ),
        ScalarExpr::Not(inner) => OqlExpr::Not(Box::new(scalar_to_oql(inner, attr_var))),
        ScalarExpr::StructLit(fields) => OqlExpr::StructConstruct(
            fields
                .iter()
                .map(|(n, e)| (n.as_ref().to_owned(), scalar_to_oql(e, attr_var)))
                .collect(),
        ),
        ScalarExpr::Agg(kind, plan) => {
            OqlExpr::Aggregate(agg_to_oql(*kind), Box::new(logical_to_oql(plan)))
        }
        ScalarExpr::Call(name, args) => OqlExpr::Call(
            name.clone(),
            args.iter().map(|a| scalar_to_oql(a, attr_var)).collect(),
        ),
    }
}

/// Maps an algebra aggregate to the OQL aggregate.
#[must_use]
pub fn agg_to_oql(kind: AggKind) -> AggFunc {
    match kind {
        AggKind::Sum => AggFunc::Sum,
        AggKind::Count => AggFunc::Count,
        AggKind::Avg => AggFunc::Avg,
        AggKind::Min => AggFunc::Min,
        AggKind::Max => AggFunc::Max,
    }
}

/// Maps an OQL aggregate to the algebra aggregate.
#[must_use]
pub fn agg_from_oql(func: AggFunc) -> AggKind {
    match func {
        AggFunc::Sum => AggKind::Sum,
        AggFunc::Count => AggKind::Count,
        AggFunc::Avg => AggKind::Avg,
        AggFunc::Min => AggKind::Min,
        AggFunc::Max => AggKind::Max,
    }
}

/// Maps an algebra scalar operator to the OQL binary operator.
#[must_use]
pub fn scalar_op_to_oql(op: ScalarOp) -> BinaryOp {
    match op {
        ScalarOp::Add => BinaryOp::Add,
        ScalarOp::Sub => BinaryOp::Sub,
        ScalarOp::Mul => BinaryOp::Mul,
        ScalarOp::Div => BinaryOp::Div,
        ScalarOp::Eq => BinaryOp::Eq,
        ScalarOp::NotEq => BinaryOp::NotEq,
        ScalarOp::Lt => BinaryOp::Lt,
        ScalarOp::Le => BinaryOp::Le,
        ScalarOp::Gt => BinaryOp::Gt,
        ScalarOp::Ge => BinaryOp::Ge,
        ScalarOp::And => BinaryOp::And,
        ScalarOp::Or => BinaryOp::Or,
    }
}

/// Maps an OQL binary operator to the algebra scalar operator.
#[must_use]
pub fn scalar_op_from_oql(op: BinaryOp) -> ScalarOp {
    match op {
        BinaryOp::Add => ScalarOp::Add,
        BinaryOp::Sub => ScalarOp::Sub,
        BinaryOp::Mul => ScalarOp::Mul,
        BinaryOp::Div => ScalarOp::Div,
        BinaryOp::Eq => ScalarOp::Eq,
        BinaryOp::NotEq => ScalarOp::NotEq,
        BinaryOp::Lt => ScalarOp::Lt,
        BinaryOp::Le => ScalarOp::Le,
        BinaryOp::Gt => ScalarOp::Gt,
        BinaryOp::Ge => ScalarOp::Ge,
        BinaryOp::And => ScalarOp::And,
        BinaryOp::Or => ScalarOp::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::data_of;
    use disco_oql::{parse_query, print_expr};

    fn salary_gt_10_src() -> ScalarExpr {
        ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        )
    }

    #[test]
    fn paper_partial_answer_prints_as_expected() {
        // The §1.3 partial answer: the residual branch for person0 plus the
        // data already obtained from person1.
        let residual_branch = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .filter(salary_gt_10_src())
            .bind("y")
            .map_project(ScalarExpr::var_field("y", "name"));
        let partial = LogicalExpr::Union(vec![residual_branch, data_of(["Sam"])]);
        let oql = logical_to_oql(&partial);
        let text = print_expr(&oql);
        assert!(
            text.contains("select y.name from y in"),
            "unexpected text: {text}"
        );
        assert!(text.contains("y.salary > 10"), "unexpected text: {text}");
        assert!(text.ends_with("bag(\"Sam\"))"), "unexpected text: {text}");
        // The printed partial answer must re-parse (it is resubmitted as a query).
        assert!(parse_query(&text).is_ok());
    }

    #[test]
    fn mediator_side_plan_renders_like_the_original_query() {
        // map(x.name, bind(x, select(salary>10, submit(r0, get(person0)))))
        let plan = LogicalExpr::Bind {
            var: "x".into(),
            input: Box::new(
                LogicalExpr::get("person0")
                    .submit("r0", "w0", "person0")
                    .filter(salary_gt_10_src()),
            ),
        }
        .map_project(ScalarExpr::var_field("x", "name"));
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(text, "select x.name from x in person0 where x.salary > 10");
    }

    #[test]
    fn source_form_project_and_filter_render_as_one_select() {
        let plan = LogicalExpr::get("person0")
            .filter(salary_gt_10_src())
            .project(["name"]);
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(text, "select t.name from t in person0 where t.salary > 10");
        let multi = LogicalExpr::get("person0").project(["name", "salary"]);
        let text = print_expr(&logical_to_oql(&multi));
        assert_eq!(
            text,
            "select struct(name: t.name, salary: t.salary) from t in person0"
        );
    }

    #[test]
    fn joins_render_with_all_bindings_and_predicates() {
        let plan = LogicalExpr::Join {
            left: Box::new(
                LogicalExpr::get("person0")
                    .submit("r0", "w0", "person0")
                    .bind("x"),
            ),
            right: Box::new(
                LogicalExpr::get("person1")
                    .submit("r1", "w0", "person1")
                    .bind("y"),
            ),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "salary".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ]));
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(
            text,
            "select struct(name: x.name, salary: x.salary + y.salary) from x in person0, y in person1 where x.id = y.id"
        );
    }

    #[test]
    fn data_unions_and_aggregates_render() {
        let plan = LogicalExpr::Aggregate {
            func: AggKind::Sum,
            input: Box::new(LogicalExpr::Union(vec![
                data_of([1i64, 2i64]),
                data_of([3i64]),
            ])),
        };
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(text, "sum(union(bag(1, 2), bag(3)))");
        assert!(parse_query(&text).is_ok());
    }

    #[test]
    fn distinct_sets_the_flag_on_selects() {
        let plan = LogicalExpr::Distinct(Box::new(
            LogicalExpr::get("person0")
                .submit("r0", "w0", "person0")
                .bind("x")
                .map_project(ScalarExpr::var_field("x", "name")),
        ));
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(text, "select distinct x.name from x in person0");
    }

    #[test]
    fn source_join_falls_back_to_a_parseable_call() {
        let plan = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("employee0")),
            right: Box::new(LogicalExpr::get("manager0")),
            on: vec![("dept".into(), "dept".into())],
        };
        let text = print_expr(&logical_to_oql(&plan));
        assert_eq!(text, "join(employee0, manager0, \"dept=dept\")");
        assert!(parse_query(&text).is_ok());
    }

    #[test]
    fn operator_mappings_round_trip() {
        for op in [
            ScalarOp::Add,
            ScalarOp::Sub,
            ScalarOp::Mul,
            ScalarOp::Div,
            ScalarOp::Eq,
            ScalarOp::NotEq,
            ScalarOp::Lt,
            ScalarOp::Le,
            ScalarOp::Gt,
            ScalarOp::Ge,
            ScalarOp::And,
            ScalarOp::Or,
        ] {
            assert_eq!(scalar_op_from_oql(scalar_op_to_oql(op)), op);
        }
        for agg in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            assert_eq!(agg_from_oql(agg_to_oql(agg)), agg);
        }
    }
}
