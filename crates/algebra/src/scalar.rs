//! Scalar (tuple-level) expressions: predicates, computed projections and
//! aggregates over sub-queries.
//!
//! Scalar expressions appear inside the logical operators of the DISCO
//! algebra: the predicate of a `select` (filter), the projection of a
//! generalized `project`, and the join condition.  A *pushable* scalar
//! expression — one built only from plain attribute references, constants,
//! comparisons and arithmetic — may travel through the `submit` operator to
//! a wrapper; anything else (struct construction, correlated sub-query
//! aggregates, reconciliation function calls) is evaluated by the mediator
//! run-time system.

use disco_value::{Bag, StructValue, Value};

use crate::logical::LogicalExpr;
use crate::{AlgebraError, Result};

/// Binary operators usable in scalar expressions (a subset of OQL's,
/// mirroring `disco_oql::BinaryOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
}

impl ScalarOp {
    /// Returns `true` for comparison operators.
    #[must_use]
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            ScalarOp::Eq
                | ScalarOp::NotEq
                | ScalarOp::Lt
                | ScalarOp::Le
                | ScalarOp::Gt
                | ScalarOp::Ge
        )
    }

    /// The OQL spelling.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            ScalarOp::Add => "+",
            ScalarOp::Sub => "-",
            ScalarOp::Mul => "*",
            ScalarOp::Div => "/",
            ScalarOp::Eq => "=",
            ScalarOp::NotEq => "!=",
            ScalarOp::Lt => "<",
            ScalarOp::Le => "<=",
            ScalarOp::Gt => ">",
            ScalarOp::Ge => ">=",
            ScalarOp::And => "and",
            ScalarOp::Or => "or",
        }
    }
}

/// Aggregate functions (matching `disco_oql::AggFunc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of numeric values.
    Sum,
    /// Count of values.
    Count,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggKind {
    /// The OQL spelling.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Count => "count",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }

    /// Applies the aggregate to a bag of values.
    ///
    /// # Errors
    ///
    /// Returns a type error if non-numeric values are aggregated by
    /// `sum`/`avg`.
    pub fn apply(&self, bag: &Bag) -> Result<Value> {
        match self {
            AggKind::Count => Ok(Value::Int(i64::try_from(bag.len()).unwrap_or(i64::MAX))),
            AggKind::Sum => {
                let mut acc = 0.0;
                let mut all_int = true;
                for v in bag {
                    if matches!(v, Value::Float(_)) {
                        all_int = false;
                    }
                    acc += v.as_float().map_err(|_| {
                        AlgebraError::Type(format!("sum over non-numeric value {v}"))
                    })?;
                }
                #[allow(clippy::cast_possible_truncation)]
                Ok(if all_int {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                })
            }
            AggKind::Avg => {
                if bag.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = 0.0;
                for v in bag {
                    acc += v.as_float().map_err(|_| {
                        AlgebraError::Type(format!("avg over non-numeric value {v}"))
                    })?;
                }
                #[allow(clippy::cast_precision_loss)]
                Ok(Value::Float(acc / bag.len() as f64))
            }
            AggKind::Min => Ok(bag
                .iter()
                .min_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null)),
            AggKind::Max => Ok(bag
                .iter()
                .max_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null)),
        }
    }
}

/// A scalar expression evaluated against one row.
///
/// Rows are [`StructValue`]s.  Inside expressions pushed to a data source
/// the row is a source tuple and attributes are referenced with
/// [`ScalarExpr::Attr`]; on the mediator side the row is an *environment*
/// struct binding each range variable to its tuple, and attributes are
/// referenced with [`ScalarExpr::Var`] + [`ScalarExpr::Field`] paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A constant value.
    Const(Value),
    /// A plain attribute of the current row (source-side form).
    Attr(String),
    /// A bound range variable (mediator-side form); evaluates to the tuple
    /// the variable is bound to.
    Var(String),
    /// Field access on a nested value, e.g. `Var("x")` then `Field("salary")`.
    Field(Box<ScalarExpr>, String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: ScalarOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Logical negation.
    Not(Box<ScalarExpr>),
    /// Struct construction (`struct(name: …, salary: …)`).  Field names
    /// are `Arc<str>` so per-row evaluation shares them instead of
    /// allocating fresh name strings for every output row.
    StructLit(Vec<(std::sync::Arc<str>, ScalarExpr)>),
    /// An aggregate over a (possibly correlated) sub-query.  Evaluated by
    /// the mediator run-time through the sub-query callback.
    Agg(AggKind, Box<LogicalExpr>),
    /// A call to an uninterpreted reconciliation function.  The run-time
    /// evaluates the built-in ones (`concat`, `coalesce`); everything else
    /// is an error, mirroring the paper's note that function calls cannot
    /// yet be passed to data sources.
    Call(String, Vec<ScalarExpr>),
}

impl ScalarExpr {
    /// Builds a constant.
    #[must_use]
    pub fn constant(value: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Const(value.into())
    }

    /// Builds an attribute reference.
    #[must_use]
    pub fn attr(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Attr(name.into())
    }

    /// Builds a `var.field` reference.
    #[must_use]
    pub fn var_field(var: impl Into<String>, field: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Field(Box::new(ScalarExpr::Var(var.into())), field.into())
    }

    /// Builds `left op right`.
    #[must_use]
    pub fn binary(op: ScalarOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Returns `true` when the expression can be pushed through `submit` to
    /// a wrapper: only plain attributes, constants, arithmetic, comparisons
    /// and boolean connectives — no variables, structs, aggregates or
    /// calls.
    #[must_use]
    pub fn is_pushable(&self) -> bool {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Attr(_) => true,
            ScalarExpr::Binary { left, right, .. } => left.is_pushable() && right.is_pushable(),
            ScalarExpr::Not(inner) => inner.is_pushable(),
            ScalarExpr::Var(_)
            | ScalarExpr::Field(..)
            | ScalarExpr::StructLit(_)
            | ScalarExpr::Agg(..)
            | ScalarExpr::Call(..) => false,
        }
    }

    /// The comparison operators appearing in the expression — wrappers may
    /// restrict which comparisons they support (§3.2).
    #[must_use]
    pub fn comparison_ops(&self) -> Vec<ScalarOp> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Binary { op, .. } = e {
                if op.is_comparison() && !out.contains(op) {
                    out.push(*op);
                }
            }
        });
        out
    }

    /// The plain attribute names referenced (source-side form only).
    #[must_use]
    pub fn referenced_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Attr(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    fn walk<F: FnMut(&ScalarExpr)>(&self, f: &mut F) {
        f(self);
        match self {
            ScalarExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            ScalarExpr::Not(inner) | ScalarExpr::Field(inner, _) => inner.walk(f),
            ScalarExpr::StructLit(fields) => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            ScalarExpr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            ScalarExpr::Const(_)
            | ScalarExpr::Attr(_)
            | ScalarExpr::Var(_)
            | ScalarExpr::Agg(..) => {}
        }
    }

    /// Renames plain attribute references through `rename` (used when a
    /// local transformation map is applied before pushing an expression to
    /// a wrapper).
    #[must_use]
    pub fn rename_attrs<F>(&self, rename: &F) -> ScalarExpr
    where
        F: Fn(&str) -> String,
    {
        match self {
            ScalarExpr::Attr(name) => ScalarExpr::Attr(rename(name)),
            ScalarExpr::Const(_) | ScalarExpr::Var(_) => self.clone(),
            ScalarExpr::Field(inner, field) => {
                ScalarExpr::Field(Box::new(inner.rename_attrs(rename)), field.clone())
            }
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.rename_attrs(rename)),
                right: Box::new(right.rename_attrs(rename)),
            },
            ScalarExpr::Not(inner) => ScalarExpr::Not(Box::new(inner.rename_attrs(rename))),
            ScalarExpr::StructLit(fields) => ScalarExpr::StructLit(
                fields
                    .iter()
                    .map(|(n, e)| (n.clone(), e.rename_attrs(rename)))
                    .collect(),
            ),
            ScalarExpr::Agg(kind, inner) => ScalarExpr::Agg(*kind, inner.clone()),
            ScalarExpr::Call(name, args) => ScalarExpr::Call(
                name.clone(),
                args.iter().map(|a| a.rename_attrs(rename)).collect(),
            ),
        }
    }
}

/// One scope layer of the evaluator's row environment.
#[derive(Debug, Clone, Copy, Default)]
enum Scope<'a> {
    /// No bindings (the root scope).
    #[default]
    Empty,
    /// A struct row: every field is a binding.
    Row(&'a StructValue),
    /// A non-struct row, exposed under the name `it`.
    It(&'a Value),
}

/// A layered, allocation-free row environment.
///
/// The evaluator used to materialise one merged `StructValue` per row (and
/// per join pair) just to give scalar expressions a place to look up
/// variables — a `Vec` rebuild plus `String` clones on every row.  `Env`
/// replaces that with a chain of borrowed scopes: the innermost scope is
/// the current row, outer scopes are enclosing rows (join partner, outer
/// query of a correlated sub-query).  Name lookup walks inward-out, so
/// inner scopes shadow outer ones — exactly the shadowing the old
/// merge-based code implemented by overwriting fields.
///
/// `Env` is `Copy` (two words: a scope and a parent pointer); stacking a
/// scope for a row costs nothing and allocates nothing.
///
/// # Examples
///
/// ```
/// use disco_algebra::{Env, ScalarExpr, eval_scalar_env};
/// use disco_value::{StructValue, Value};
///
/// let row = StructValue::new(vec![("salary", Value::Int(200))]).unwrap();
/// let root = Env::root();
/// let env = root.with_row(&row);
/// let v = eval_scalar_env(&ScalarExpr::attr("salary"), &env).unwrap();
/// assert_eq!(v, Value::Int(200));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Env<'a> {
    scope: Scope<'a>,
    outer: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    /// The empty root environment.
    #[must_use]
    pub fn root() -> Env<'static> {
        Env {
            scope: Scope::Empty,
            outer: None,
        }
    }

    /// An environment whose only scope is `row`.
    #[must_use]
    pub fn of_row(row: &'a StructValue) -> Env<'a> {
        Env {
            scope: Scope::Row(row),
            outer: None,
        }
    }

    /// Stacks a struct-row scope on top of `self`; the row's fields shadow
    /// same-named outer bindings.
    #[must_use]
    pub fn with_row(&'a self, row: &'a StructValue) -> Env<'a> {
        Env {
            scope: Scope::Row(row),
            outer: Some(self),
        }
    }

    /// Stacks a value scope: struct rows bind their fields, any other value
    /// is exposed under the name `it`.
    #[must_use]
    pub fn with_value(&'a self, value: &'a Value) -> Env<'a> {
        match value {
            Value::Struct(s) => self.with_row(s),
            other => Env {
                scope: Scope::It(other),
                outer: Some(self),
            },
        }
    }

    /// Looks a name up through the scope chain, innermost scope first.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&'a Value> {
        let mut env = Some(self);
        while let Some(e) = env {
            match e.scope {
                Scope::Row(row) => {
                    if let Some(v) = row.get(name) {
                        return Some(v);
                    }
                }
                Scope::It(v) => {
                    if name == "it" {
                        return Some(v);
                    }
                }
                Scope::Empty => {}
            }
            env = e.outer;
        }
        None
    }
}

/// Callback used to evaluate sub-query aggregates: given a logical plan and
/// the current environment, produce the bag of values of the sub-query.
pub type SubqueryEval<'a> = dyn Fn(&LogicalExpr, &Env<'_>) -> Result<Bag> + 'a;

/// Evaluates a scalar expression against a row with no sub-query support
/// (used by wrappers and data sources).
///
/// # Errors
///
/// Returns [`AlgebraError::SubqueryNotSupported`] if the expression
/// contains an aggregate sub-query, plus the usual attribute/type errors.
pub fn eval_scalar(expr: &ScalarExpr, row: &StructValue) -> Result<Value> {
    let env = Env::of_row(row);
    eval_scalar_with(expr, &env, &|_, _| Err(AlgebraError::SubqueryNotSupported))
}

/// Evaluates a scalar expression against an environment with no sub-query
/// support.
///
/// # Errors
///
/// See [`eval_scalar`].
pub fn eval_scalar_env(expr: &ScalarExpr, env: &Env<'_>) -> Result<Value> {
    eval_scalar_with(expr, env, &|_, _| Err(AlgebraError::SubqueryNotSupported))
}

/// Evaluates a scalar expression against an environment, delegating
/// aggregate sub-queries to `subquery`.
///
/// # Errors
///
/// Returns attribute, variable, or type errors; division by zero; and any
/// error produced by the sub-query callback.
pub fn eval_scalar_with(
    expr: &ScalarExpr,
    env: &Env<'_>,
    subquery: &SubqueryEval<'_>,
) -> Result<Value> {
    match expr {
        ScalarExpr::Const(v) => Ok(v.clone()),
        ScalarExpr::Attr(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| AlgebraError::UnknownAttribute(name.clone())),
        ScalarExpr::Var(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| AlgebraError::UnknownVariable(name.clone())),
        ScalarExpr::Field(inner, field) => {
            // Fast path `x.field`: borrow through the environment without
            // cloning the intermediate struct.
            if let ScalarExpr::Var(var) = inner.as_ref() {
                return match env.lookup(var) {
                    None => Err(AlgebraError::UnknownVariable(var.clone())),
                    Some(Value::Struct(s)) => s
                        .get(field)
                        .cloned()
                        .ok_or_else(|| AlgebraError::UnknownAttribute(field.clone())),
                    Some(Value::Null) => Ok(Value::Null),
                    Some(other) => Err(AlgebraError::Type(format!(
                        "field access .{field} on non-struct value {other}"
                    ))),
                };
            }
            let base = eval_scalar_with(inner, env, subquery)?;
            match base {
                Value::Struct(s) => s
                    .field(field)
                    .cloned()
                    .map_err(|_| AlgebraError::UnknownAttribute(field.clone())),
                Value::Null => Ok(Value::Null),
                other => Err(AlgebraError::Type(format!(
                    "field access .{field} on non-struct value {other}"
                ))),
            }
        }
        ScalarExpr::Binary { op, left, right } => {
            let l = eval_scalar_with(left, env, subquery)?;
            let r = eval_scalar_with(right, env, subquery)?;
            eval_binary(*op, &l, &r)
        }
        ScalarExpr::Not(inner) => {
            let v = eval_scalar_with(inner, env, subquery)?;
            Ok(Value::Bool(!truthy(&v)))
        }
        ScalarExpr::StructLit(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                // Arc bump: the output row shares the literal's name storage.
                out.push((
                    std::sync::Arc::clone(name),
                    eval_scalar_with(e, env, subquery)?,
                ));
            }
            Ok(Value::Struct(StructValue::new(out)?))
        }
        ScalarExpr::Agg(kind, plan) => {
            let bag = subquery(plan, env)?;
            kind.apply(&bag)
        }
        ScalarExpr::Call(name, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_scalar_with(a, env, subquery)?);
            }
            eval_builtin_call(name, &values)
        }
    }
}

/// Built-in reconciliation functions available to view definitions.
fn eval_builtin_call(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        // Fail point for fault-injection tests (only with the
        // `test-failpoints` feature, which the runtime's dev-dependencies
        // enable — production builds treat the name as any other unknown
        // function): panics (not errors) when its argument is truthy, so
        // the poison-safety tests of the parallel engine can make a
        // cursor die mid-batch at a chosen row.  Evaluates to `true`
        // otherwise, so it composes as a filter predicate.  Never
        // produced by the OQL front end.
        #[cfg(feature = "test-failpoints")]
        "__disco_panic_if__" => {
            if args.iter().any(truthy) {
                panic!("injected panic (__disco_panic_if__ fail point)");
            }
            Ok(Value::Bool(true))
        }
        "concat" => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Str(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::Str(out.into()))
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        other => Err(AlgebraError::Unsupported(format!(
            "unknown function: {other}"
        ))),
    }
}

/// Evaluates one binary operation.
///
/// # Errors
///
/// Returns type errors for invalid operand combinations and
/// [`AlgebraError::DivisionByZero`].
pub fn eval_binary(op: ScalarOp, left: &Value, right: &Value) -> Result<Value> {
    use ScalarOp::{Add, And, Div, Eq, Ge, Gt, Le, Lt, Mul, NotEq, Or, Sub};
    match op {
        And => Ok(Value::Bool(truthy(left) && truthy(right))),
        Or => Ok(Value::Bool(truthy(left) || truthy(right))),
        Eq => Ok(Value::Bool(left == right)),
        NotEq => Ok(Value::Bool(left != right)),
        Lt | Le | Gt | Ge => {
            if left.is_null() || right.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = left.total_cmp(right);
            Ok(Value::Bool(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        Add | Sub | Mul | Div => {
            // String concatenation with `+`.
            if op == Add {
                if let (Value::Str(a), Value::Str(b)) = (left, right) {
                    return Ok(Value::Str(format!("{a}{b}").into()));
                }
            }
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            match (left, right) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a + b),
                    Sub => Value::Int(a - b),
                    Mul => Value::Int(a * b),
                    Div => {
                        if *b == 0 {
                            return Err(AlgebraError::DivisionByZero);
                        }
                        Value::Int(a / b)
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let a = left.as_float().map_err(|_| {
                        AlgebraError::Type(format!("arithmetic on non-numeric value {left}"))
                    })?;
                    let b = right.as_float().map_err(|_| {
                        AlgebraError::Type(format!("arithmetic on non-numeric value {right}"))
                    })?;
                    Ok(match op {
                        Add => Value::Float(a + b),
                        Sub => Value::Float(a - b),
                        Mul => Value::Float(a * b),
                        Div => {
                            if b == 0.0 {
                                return Err(AlgebraError::DivisionByZero);
                            }
                            Value::Float(a / b)
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
    }
}

/// OQL truthiness: only `true` is true; `null` and everything else is false.
#[must_use]
pub fn truthy(value: &Value) -> bool {
    matches!(value, Value::Bool(true))
}

impl std::fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Attr(a) => write!(f, "{a}"),
            ScalarExpr::Var(v) => write!(f, "{v}"),
            ScalarExpr::Field(base, field) => write!(f, "{base}.{field}"),
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Not(inner) => write!(f, "not ({inner})"),
            ScalarExpr::StructLit(fields) => {
                write!(f, "struct(")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Agg(kind, plan) => write!(f, "{}({plan})", kind.name()),
            ScalarExpr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mary() -> StructValue {
        StructValue::new(vec![
            ("name", Value::from("Mary")),
            ("salary", Value::Int(200)),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_and_constant_evaluation() {
        let row = mary();
        assert_eq!(
            eval_scalar(&ScalarExpr::attr("salary"), &row).unwrap(),
            Value::Int(200)
        );
        assert_eq!(
            eval_scalar(&ScalarExpr::constant(5i64), &row).unwrap(),
            Value::Int(5)
        );
        assert!(matches!(
            eval_scalar(&ScalarExpr::attr("missing"), &row),
            Err(AlgebraError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn paper_predicate_salary_gt_10() {
        let pred = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        );
        assert_eq!(eval_scalar(&pred, &mary()).unwrap(), Value::Bool(true));
        let sam = StructValue::new(vec![
            ("name", Value::from("Sam")),
            ("salary", Value::Int(5)),
        ])
        .unwrap();
        assert_eq!(eval_scalar(&pred, &sam).unwrap(), Value::Bool(false));
        assert!(pred.is_pushable());
        assert_eq!(pred.comparison_ops(), vec![ScalarOp::Gt]);
        assert_eq!(pred.referenced_attrs(), vec!["salary"]);
    }

    #[test]
    fn env_rows_use_var_field_paths() {
        let env = StructValue::new(vec![("x", Value::Struct(mary()))]).unwrap();
        let e = ScalarExpr::var_field("x", "salary");
        assert_eq!(eval_scalar(&e, &env).unwrap(), Value::Int(200));
        assert!(!e.is_pushable());
        assert!(matches!(
            eval_scalar(&ScalarExpr::Var("y".into()), &env),
            Err(AlgebraError::UnknownVariable(_))
        ));
    }

    #[test]
    fn struct_literal_builds_structs() {
        let env = StructValue::new(vec![("x", Value::Struct(mary()))]).unwrap();
        let e = ScalarExpr::StructLit(vec![
            ("who".into(), ScalarExpr::var_field("x", "name")),
            (
                "double_pay".into(),
                ScalarExpr::binary(
                    ScalarOp::Mul,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::constant(2i64),
                ),
            ),
        ]);
        let v = eval_scalar(&e, &env).unwrap();
        let s = v.as_struct().unwrap();
        assert_eq!(s.field("who").unwrap(), &Value::from("Mary"));
        assert_eq!(s.field("double_pay").unwrap(), &Value::Int(400));
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let row = StructValue::default();
        let div = ScalarExpr::binary(
            ScalarOp::Div,
            ScalarExpr::constant(4i64),
            ScalarExpr::constant(0i64),
        );
        assert!(matches!(
            eval_scalar(&div, &row),
            Err(AlgebraError::DivisionByZero)
        ));
        let mixed = ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::constant(1i64),
            ScalarExpr::constant(0.5f64),
        );
        assert_eq!(eval_scalar(&mixed, &row).unwrap(), Value::Float(1.5));
        let concat = ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::constant("a"),
            ScalarExpr::constant("b"),
        );
        assert_eq!(eval_scalar(&concat, &row).unwrap(), Value::from("ab"));
    }

    #[test]
    fn null_semantics() {
        let row = StructValue::default();
        let cmp = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::Const(Value::Null),
            ScalarExpr::constant(1i64),
        );
        assert_eq!(eval_scalar(&cmp, &row).unwrap(), Value::Bool(false));
        let arith = ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::Const(Value::Null),
            ScalarExpr::constant(1i64),
        );
        assert_eq!(eval_scalar(&arith, &row).unwrap(), Value::Null);
        assert!(!truthy(&Value::Null));
    }

    #[test]
    fn logical_connectives_and_not() {
        let row = mary();
        let e = ScalarExpr::binary(
            ScalarOp::And,
            ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::attr("salary"),
                ScalarExpr::constant(10i64),
            ),
            ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::attr("name"),
                ScalarExpr::constant("Mary"),
            ),
        );
        assert_eq!(eval_scalar(&e, &row).unwrap(), Value::Bool(true));
        let not = ScalarExpr::Not(Box::new(e));
        assert_eq!(eval_scalar(&not, &row).unwrap(), Value::Bool(false));
    }

    #[test]
    fn aggregates_apply() {
        let bag: Bag = [Value::Int(1), Value::Int(2), Value::Int(3)]
            .into_iter()
            .collect();
        assert_eq!(AggKind::Sum.apply(&bag).unwrap(), Value::Int(6));
        assert_eq!(AggKind::Count.apply(&bag).unwrap(), Value::Int(3));
        assert_eq!(AggKind::Avg.apply(&bag).unwrap(), Value::Float(2.0));
        assert_eq!(AggKind::Min.apply(&bag).unwrap(), Value::Int(1));
        assert_eq!(AggKind::Max.apply(&bag).unwrap(), Value::Int(3));
        assert_eq!(AggKind::Avg.apply(&Bag::new()).unwrap(), Value::Null);
        assert_eq!(AggKind::Min.apply(&Bag::new()).unwrap(), Value::Null);
        let mixed: Bag = [Value::Int(1), Value::Float(0.5)].into_iter().collect();
        assert_eq!(AggKind::Sum.apply(&mixed).unwrap(), Value::Float(1.5));
        let bad: Bag = [Value::from("x")].into_iter().collect();
        assert!(AggKind::Sum.apply(&bad).is_err());
    }

    #[test]
    fn subqueries_error_without_callback() {
        let e = ScalarExpr::Agg(
            AggKind::Sum,
            Box::new(LogicalExpr::Get {
                collection: "person0".into(),
            }),
        );
        assert!(matches!(
            eval_scalar(&e, &StructValue::default()),
            Err(AlgebraError::SubqueryNotSupported)
        ));
        assert!(!e.is_pushable());
    }

    #[test]
    fn builtin_calls() {
        let row = StructValue::default();
        let e = ScalarExpr::Call(
            "concat".into(),
            vec![ScalarExpr::constant("a"), ScalarExpr::constant("b")],
        );
        assert_eq!(eval_scalar(&e, &row).unwrap(), Value::from("ab"));
        let e = ScalarExpr::Call(
            "coalesce".into(),
            vec![ScalarExpr::Const(Value::Null), ScalarExpr::constant(7i64)],
        );
        assert_eq!(eval_scalar(&e, &row).unwrap(), Value::Int(7));
        let e = ScalarExpr::Call("mystery".into(), vec![]);
        assert!(eval_scalar(&e, &row).is_err());
    }

    #[test]
    fn rename_attrs_applies_map_direction() {
        let pred = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("s"),
            ScalarExpr::constant(10i64),
        );
        let renamed = pred.rename_attrs(&|a| if a == "s" { "salary".into() } else { a.into() });
        assert_eq!(renamed.referenced_attrs(), vec!["salary"]);
    }

    #[test]
    fn display_is_readable() {
        let pred = ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        );
        assert_eq!(pred.to_string(), "(salary > 10)");
    }
}
