//! Wrapper for flat-file (CSV) sources: the file-system style of
//! information server.  Its only capability is `get` — every operation
//! beyond a full fetch happens at the mediator.

use std::sync::Arc;

use disco_algebra::{CapabilitySet, LogicalExpr};
use disco_source::{CsvSource, SimulatedLink};
use disco_value::Value;

use crate::interface::{AnswerSink, AnswerSummary, Wrapper, WrapperAnswer};
use crate::WrapperError;

/// A `get`-only wrapper over a [`CsvSource`].
pub struct CsvWrapper {
    name: String,
    source: CsvSource,
    link: Arc<SimulatedLink>,
}

impl CsvWrapper {
    /// Creates the wrapper.
    pub fn new(name: impl Into<String>, source: CsvSource, link: Arc<SimulatedLink>) -> Self {
        CsvWrapper {
            name: name.into(),
            source,
            link,
        }
    }

    /// The simulated link (for fail/recover injection in tests).
    #[must_use]
    pub fn link(&self) -> &Arc<SimulatedLink> {
        &self.link
    }

    /// Checks the pushed expression and scans the file: the shared front
    /// half of [`Wrapper::submit`] and [`Wrapper::submit_streaming`],
    /// everything except latency accounting and delivery.
    fn fetch(&self, expr: &LogicalExpr) -> Result<(Vec<Value>, usize), WrapperError> {
        self.capabilities()
            .accepts_named(expr, &self.name)
            .map_err(WrapperError::Capability)?;
        let LogicalExpr::Get { collection } = expr else {
            return Err(WrapperError::Capability(
                disco_algebra::AlgebraError::CapabilityViolation {
                    operator: expr.op_name().to_owned(),
                    wrapper: self.name.clone(),
                },
            ));
        };
        if collection != self.source.table().name() {
            return Err(WrapperError::Source(
                disco_source::SourceError::UnknownTable(collection.clone()),
            ));
        }
        if !self.link.is_available() {
            return Err(WrapperError::Unavailable {
                endpoint: self.link.endpoint().to_owned(),
            });
        }
        let rows = self.source.scan();
        let count = rows.len();
        Ok((rows.into_iter().map(Value::Struct).collect(), count))
    }
}

impl std::fmt::Debug for CsvWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsvWrapper")
            .field("name", &self.name)
            .field("table", &self.source.table().name())
            .finish()
    }
}

impl Wrapper for CsvWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "csv"
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::get_only()
    }

    fn submit(&self, expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        let (rows, rows_scanned) = self.fetch(expr)?;
        let latency =
            self.link
                .call_delay(rows.len())
                .ok_or_else(|| WrapperError::Unavailable {
                    endpoint: self.link.endpoint().to_owned(),
                })?;
        Ok(WrapperAnswer {
            rows: rows.into_iter().collect(),
            rows_scanned,
            latency,
        })
    }

    fn submit_streaming(
        &self,
        expr: &LogicalExpr,
        sink: &mut dyn AnswerSink,
    ) -> Result<AnswerSummary, WrapperError> {
        let (rows, rows_scanned) = self.fetch(expr)?;
        crate::streaming::stream_chunks(&self.link, rows, rows_scanned, sink)
    }

    fn is_available(&self) -> bool {
        self.link.is_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_source::{Availability, NetworkProfile};

    const CSV: &str = "site,ph\nseine-01,7.2\nseine-02,6.9\n";

    fn wrapper() -> CsvWrapper {
        let source = CsvSource::from_text("measurements0", CSV).unwrap();
        let link = Arc::new(SimulatedLink::new("r_csv", NetworkProfile::fast(), 5));
        CsvWrapper::new("w_csv", source, link)
    }

    #[test]
    fn get_scans_the_whole_file() {
        let w = wrapper();
        let answer = w.submit(&LogicalExpr::get("measurements0")).unwrap();
        assert_eq!(answer.rows_returned(), 2);
        assert_eq!(answer.rows_scanned, 2);
        assert_eq!(w.kind(), "csv");
    }

    #[test]
    fn any_pushdown_is_rejected() {
        let w = wrapper();
        let err = w
            .submit(&LogicalExpr::get("measurements0").project(["site"]))
            .unwrap_err();
        assert!(matches!(err, WrapperError::Capability(_)));
    }

    #[test]
    fn streaming_delivers_the_file_in_link_sized_chunks() {
        struct Collect(Vec<usize>);
        impl crate::AnswerSink for Collect {
            fn push(&mut self, rows: disco_value::Bag) -> bool {
                self.0.push(rows.len());
                true
            }
        }
        let source = CsvSource::from_text("measurements0", CSV).unwrap();
        let link = Arc::new(SimulatedLink::new(
            "r_csv",
            NetworkProfile::fast().with_chunk_rows(1),
            5,
        ));
        let w = CsvWrapper::new("w_csv", source, link);
        let mut sink = Collect(Vec::new());
        let summary = w
            .submit_streaming(&LogicalExpr::get("measurements0"), &mut sink)
            .unwrap();
        assert_eq!(sink.0, vec![1, 1], "two rows, one per chunk");
        assert_eq!(summary.rows_scanned, 2);
        assert!(summary.latency > std::time::Duration::ZERO);
    }

    #[test]
    fn wrong_collection_and_unavailability() {
        let w = wrapper();
        assert!(matches!(
            w.submit(&LogicalExpr::get("other")).unwrap_err(),
            WrapperError::Source(_)
        ));
        w.link().set_availability(Availability::Unavailable);
        assert!(matches!(
            w.submit(&LogicalExpr::get("measurements0")).unwrap_err(),
            WrapperError::Unavailable { .. }
        ));
    }
}
