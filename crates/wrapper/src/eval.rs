//! Evaluation of pushed logical expressions against a row provider.
//!
//! Wrappers share this evaluator: the wrapper supplies a function that
//! fetches the rows of a named collection from its source, and the
//! evaluator executes the pushable operator subset (`get`, `select`,
//! `project`, `join`) over those rows.  Anything outside the subset is a
//! capability violation at run time — a defence in depth behind the
//! optimizer's static check.

use disco_algebra::{eval_scalar, truthy, AlgebraError, LogicalExpr};
use disco_value::{Bag, StructValue, Value};

use crate::WrapperError;

/// Fetches all rows of a named collection from the underlying source.
pub type RowProvider<'a> = dyn Fn(&str) -> Result<Vec<StructValue>, WrapperError> + 'a;

/// The result of evaluating a pushed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedResult {
    /// Produced rows.
    pub rows: Bag,
    /// Rows touched at the source while answering.
    pub rows_scanned: usize,
}

/// Evaluates a pushed expression.
///
/// # Errors
///
/// Returns [`WrapperError::Capability`] for operators outside the pushable
/// subset, and propagates provider / evaluation errors.
pub fn eval_pushed(
    expr: &LogicalExpr,
    provider: &RowProvider<'_>,
) -> Result<PushedResult, WrapperError> {
    match expr {
        LogicalExpr::Get { collection } => {
            let rows = provider(collection)?;
            let scanned = rows.len();
            Ok(PushedResult {
                rows: rows.into_iter().map(Value::Struct).collect(),
                rows_scanned: scanned,
            })
        }
        LogicalExpr::Filter { input, predicate } => {
            let inner = eval_pushed(input, provider)?;
            let mut rows = Bag::with_capacity(inner.rows.len());
            for row in &inner.rows {
                let s = row.as_struct().map_err(AlgebraError::from)?;
                let keep = eval_scalar(predicate, s).map_err(WrapperError::from)?;
                if truthy(&keep) {
                    rows.insert(row.clone());
                }
            }
            Ok(PushedResult {
                rows,
                rows_scanned: inner.rows_scanned,
            })
        }
        LogicalExpr::Project { input, columns } => {
            let inner = eval_pushed(input, provider)?;
            let mut rows = Bag::with_capacity(inner.rows.len());
            for row in &inner.rows {
                let s = row.as_struct().map_err(AlgebraError::from)?;
                let projected = s
                    .project(columns.iter().map(String::as_str))
                    .map_err(AlgebraError::from)?;
                rows.insert(Value::Struct(projected));
            }
            Ok(PushedResult {
                rows,
                rows_scanned: inner.rows_scanned,
            })
        }
        LogicalExpr::SourceJoin { left, right, on } => {
            let l = eval_pushed(left, provider)?;
            let r = eval_pushed(right, provider)?;
            let mut rows = Bag::new();
            for lv in &l.rows {
                let ls = lv.as_struct().map_err(AlgebraError::from)?;
                for rv in &r.rows {
                    let rs = rv.as_struct().map_err(AlgebraError::from)?;
                    let mut matches = true;
                    for (lattr, rattr) in on {
                        let lval = ls.field(lattr).map_err(AlgebraError::from)?;
                        let rval = rs.field(rattr).map_err(AlgebraError::from)?;
                        if lval != rval {
                            matches = false;
                            break;
                        }
                    }
                    if matches {
                        let merged = ls
                            .merge_with_prefix(rs, "right")
                            .map_err(AlgebraError::from)?;
                        rows.insert(Value::Struct(merged));
                    }
                }
            }
            Ok(PushedResult {
                rows,
                rows_scanned: l.rows_scanned + r.rows_scanned,
            })
        }
        other => Err(WrapperError::Capability(
            AlgebraError::CapabilityViolation {
                operator: other.op_name().to_owned(),
                wrapper: "<pushed evaluator>".to_owned(),
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{ScalarExpr, ScalarOp};

    fn provider(collection: &str) -> Result<Vec<StructValue>, WrapperError> {
        match collection {
            "person0" => Ok(vec![
                StructValue::new(vec![
                    ("id", Value::Int(1)),
                    ("name", Value::from("Mary")),
                    ("salary", Value::Int(200)),
                ])
                .unwrap(),
                StructValue::new(vec![
                    ("id", Value::Int(2)),
                    ("name", Value::from("Ann")),
                    ("salary", Value::Int(5)),
                ])
                .unwrap(),
            ]),
            "dept0" => Ok(vec![StructValue::new(vec![
                ("id", Value::Int(1)),
                ("dept", Value::from("db")),
            ])
            .unwrap()]),
            other => Err(WrapperError::Source(
                disco_source::SourceError::UnknownTable(other.to_owned()),
            )),
        }
    }

    #[test]
    fn get_scans_all_rows() {
        let result = eval_pushed(&LogicalExpr::get("person0"), &provider).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows_scanned, 2);
        assert!(eval_pushed(&LogicalExpr::get("missing"), &provider).is_err());
    }

    #[test]
    fn filter_and_project_compose() {
        let expr = LogicalExpr::get("person0")
            .filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::attr("salary"),
                ScalarExpr::constant(10i64),
            ))
            .project(["name"]);
        let result = eval_pushed(&expr, &provider).unwrap();
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows_scanned, 2, "source still scanned both rows");
        let only = result.rows.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(only.field("name").unwrap(), &Value::from("Mary"));
        assert_eq!(only.len(), 1, "projection narrowed the row");
    }

    #[test]
    fn source_join_merges_matching_tuples() {
        let expr = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("person0")),
            right: Box::new(LogicalExpr::get("dept0")),
            on: vec![("id".into(), "id".into())],
        };
        let result = eval_pushed(&expr, &provider).unwrap();
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows_scanned, 3);
        let merged = result.rows.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(merged.field("dept").unwrap(), &Value::from("db"));
        assert_eq!(merged.field("name").unwrap(), &Value::from("Mary"));
    }

    #[test]
    fn non_pushable_operators_are_rejected_at_run_time() {
        let expr = LogicalExpr::get("person0").bind("x");
        let err = eval_pushed(&expr, &provider).unwrap_err();
        assert!(matches!(err, WrapperError::Capability(_)));
    }

    #[test]
    fn filter_on_missing_attribute_is_an_evaluation_error() {
        let expr = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("nonexistent"),
            ScalarExpr::constant(1i64),
        ));
        let err = eval_pushed(&expr, &provider).unwrap_err();
        assert!(matches!(err, WrapperError::Algebra(_)));
    }
}
