//! The shared chunked-delivery loop of streamed `submit` calls.
//!
//! Every wrapper over a [`SimulatedLink`] streams the same way: split the
//! answer into the link's chunk sizes, pay (and report) each chunk's
//! simulated latency, and push the chunk into the consumer's sink —
//! stopping promptly when the consumer disconnects.  Factoring the loop
//! here keeps the latency/cancellation semantics identical across the
//! relational, CSV and document wrappers.

use std::time::Duration;

use disco_source::SimulatedLink;
use disco_value::{Bag, Value};

use crate::interface::{AnswerSink, AnswerSummary};
use crate::WrapperError;

/// Delivers `rows` through `sink` in the link's chunk sizes, metering
/// each chunk's simulated delay.  Cancellation is honoured both between
/// chunks and inside a chunk's (real-sleep) delay; a mid-stream
/// disconnect returns the summary of what was delivered so far.
///
/// # Errors
///
/// [`WrapperError::Unavailable`] when the link fails mid-stream.
pub(crate) fn stream_chunks(
    link: &SimulatedLink,
    rows: Vec<Value>,
    rows_scanned: usize,
    sink: &mut dyn AnswerSink,
) -> Result<AnswerSummary, WrapperError> {
    let mut offset = 0usize;
    let mut latency = Duration::ZERO;
    let mut first = true;
    for size in link.chunk_sizes(rows.len()) {
        if sink.is_cancelled() {
            break;
        }
        let delay = link
            .chunk_delay(size, first, &|| sink.is_cancelled())
            .ok_or_else(|| WrapperError::Unavailable {
                endpoint: link.endpoint().to_owned(),
            })?;
        latency += delay;
        first = false;
        let chunk: Bag = rows[offset..offset + size].iter().cloned().collect();
        offset += size;
        if !sink.push(chunk) {
            break;
        }
    }
    Ok(AnswerSummary {
        rows_scanned,
        latency,
    })
}
