//! Wrapper for the in-memory relational source — the stand-in for the
//! paper's `WrapperPostgres()`.

use std::sync::Arc;

use disco_algebra::{CapabilitySet, LogicalExpr};
use disco_source::{RelationalStore, SimulatedLink};

use crate::eval::eval_pushed;
use crate::interface::{AnswerSink, AnswerSummary, Wrapper, WrapperAnswer};
use crate::WrapperError;

/// A wrapper exposing a [`RelationalStore`] behind a simulated network
/// link, with a configurable capability set.
///
/// The capability set is configurable because the experiments of §3.2 and
/// E3 compare sources of different querying power ("the mismatch in
/// querying power of each server"): the same store can be exposed as a
/// full SQL-like source or as a fetch-everything source.
pub struct RelationalWrapper {
    name: String,
    store: Arc<RelationalStore>,
    link: Arc<SimulatedLink>,
    capabilities: CapabilitySet,
}

impl RelationalWrapper {
    /// Creates a wrapper with full (get/select/project/join + composition)
    /// capabilities.
    pub fn new(
        name: impl Into<String>,
        store: Arc<RelationalStore>,
        link: Arc<SimulatedLink>,
    ) -> Self {
        RelationalWrapper {
            name: name.into(),
            store,
            link,
            capabilities: CapabilitySet::full(),
        }
    }

    /// Restricts the advertised capability set.
    #[must_use]
    pub fn with_capabilities(mut self, capabilities: CapabilitySet) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// The underlying store (useful for tests and examples).
    #[must_use]
    pub fn store(&self) -> &Arc<RelationalStore> {
        &self.store
    }

    /// The simulated link (useful for fail/recover injection).
    #[must_use]
    pub fn link(&self) -> &Arc<SimulatedLink> {
        &self.link
    }
}

impl std::fmt::Debug for RelationalWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationalWrapper")
            .field("name", &self.name)
            .field("endpoint", &self.link.endpoint())
            .field("capabilities", &self.capabilities)
            .finish()
    }
}

impl Wrapper for RelationalWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "relational"
    }

    fn capabilities(&self) -> CapabilitySet {
        self.capabilities.clone()
    }

    fn submit(&self, expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        self.capabilities
            .accepts_named(expr, &self.name)
            .map_err(WrapperError::Capability)?;
        if !self.link.is_available() {
            return Err(WrapperError::Unavailable {
                endpoint: self.link.endpoint().to_owned(),
            });
        }
        let store = Arc::clone(&self.store);
        let result = eval_pushed(expr, &move |collection: &str| {
            store.scan(collection).map_err(WrapperError::from)
        })?;
        let latency =
            self.link
                .call_delay(result.rows.len())
                .ok_or_else(|| WrapperError::Unavailable {
                    endpoint: self.link.endpoint().to_owned(),
                })?;
        Ok(WrapperAnswer {
            rows: result.rows,
            rows_scanned: result.rows_scanned,
            latency,
        })
    }

    fn submit_streaming(
        &self,
        expr: &LogicalExpr,
        sink: &mut dyn AnswerSink,
    ) -> Result<AnswerSummary, WrapperError> {
        self.capabilities
            .accepts_named(expr, &self.name)
            .map_err(WrapperError::Capability)?;
        if !self.link.is_available() {
            return Err(WrapperError::Unavailable {
                endpoint: self.link.endpoint().to_owned(),
            });
        }
        let store = Arc::clone(&self.store);
        let result = eval_pushed(expr, &move |collection: &str| {
            store.scan(collection).map_err(WrapperError::from)
        })?;
        crate::streaming::stream_chunks(
            &self.link,
            result.rows.into_values(),
            result.rows_scanned,
            sink,
        )
    }

    fn is_available(&self) -> bool {
        self.link.is_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{OperatorKind, ScalarExpr, ScalarOp};
    use disco_source::{generator, Availability, NetworkProfile};
    use disco_value::Value;
    use std::time::Duration;

    fn setup(caps: CapabilitySet) -> RelationalWrapper {
        let store = Arc::new(RelationalStore::new());
        store.put_table(generator::person_table("person0", 20, 0, 42));
        let link = Arc::new(SimulatedLink::new("r0", NetworkProfile::fast(), 1));
        RelationalWrapper::new("w0", store, link).with_capabilities(caps)
    }

    #[test]
    fn full_wrapper_answers_pushed_select_project() {
        let wrapper = setup(CapabilitySet::full());
        let expr = LogicalExpr::get("person0")
            .filter(ScalarExpr::binary(
                ScalarOp::Ge,
                ScalarExpr::attr("salary"),
                ScalarExpr::constant(0i64),
            ))
            .project(["name"]);
        let answer = wrapper.submit(&expr).unwrap();
        assert_eq!(answer.rows_scanned, 20);
        assert_eq!(answer.rows_returned(), 20);
        assert!(answer.latency > Duration::ZERO);
        assert_eq!(wrapper.kind(), "relational");
    }

    #[test]
    fn restricted_wrapper_rejects_unsupported_pushes() {
        let wrapper = setup(CapabilitySet::new([OperatorKind::Get]));
        let expr = LogicalExpr::get("person0").project(["name"]);
        assert!(matches!(
            wrapper.submit(&expr).unwrap_err(),
            WrapperError::Capability(_)
        ));
        // Plain get still works.
        assert!(wrapper.submit(&LogicalExpr::get("person0")).is_ok());
    }

    #[test]
    fn unavailable_link_yields_unavailable_error() {
        let wrapper = setup(CapabilitySet::full());
        wrapper.link().set_availability(Availability::Unavailable);
        assert!(!wrapper.is_available());
        let err = wrapper.submit(&LogicalExpr::get("person0")).unwrap_err();
        assert!(matches!(err, WrapperError::Unavailable { .. }));
        // Recovery restores answers.
        wrapper.link().set_availability(Availability::Available);
        assert!(wrapper.submit(&LogicalExpr::get("person0")).is_ok());
    }

    #[test]
    fn unknown_table_is_a_source_error() {
        let wrapper = setup(CapabilitySet::full());
        let err = wrapper.submit(&LogicalExpr::get("missing")).unwrap_err();
        assert!(matches!(err, WrapperError::Source(_)));
    }

    #[test]
    fn pushdown_reduces_rows_returned_but_not_rows_scanned() {
        let wrapper = setup(CapabilitySet::full());
        let selective = LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(450i64),
        ));
        let answer = wrapper.submit(&selective).unwrap();
        assert_eq!(answer.rows_scanned, 20);
        assert!(answer.rows_returned() < 20);
        let person0 = wrapper.store().scan("person0").unwrap();
        let expected = person0
            .iter()
            .filter(|r| r.field("salary").unwrap() > &Value::Int(450))
            .count();
        assert_eq!(answer.rows_returned(), expected);
    }
}
