//! Application of local transformation maps (§2.2.2) at the wrapper
//! boundary, plus the run-time type-conformance check.
//!
//! The `exec` physical algorithm "transforms the second argument logical
//! expression into a logical expression in the name space of the data
//! source using the map"; answers travel the opposite direction.  The two
//! directions are [`map_expr_to_source`] and [`map_rows_to_mediator`].

use disco_algebra::LogicalExpr;
use disco_catalog::TypeMap;
use disco_value::{Bag, Value};

use crate::WrapperError;

/// Rewrites a pushed logical expression from the mediator name space into
/// the data-source name space: extent names become source relation names
/// and attribute names are renamed through the map.
#[must_use]
pub fn map_expr_to_source(expr: &LogicalExpr, map: &TypeMap) -> LogicalExpr {
    if map.is_identity() {
        return expr.clone();
    }
    let rename_attr = |a: &str| map.mediator_to_source(a);
    match expr {
        LogicalExpr::Get { collection } => LogicalExpr::Get {
            collection: map.extent_to_relation(collection),
        },
        LogicalExpr::Filter { input, predicate } => LogicalExpr::Filter {
            input: Box::new(map_expr_to_source(input, map)),
            predicate: predicate.rename_attrs(&rename_attr),
        },
        LogicalExpr::Project { input, columns } => LogicalExpr::Project {
            input: Box::new(map_expr_to_source(input, map)),
            columns: columns.iter().map(|c| map.mediator_to_source(c)).collect(),
        },
        LogicalExpr::SourceJoin { left, right, on } => LogicalExpr::SourceJoin {
            left: Box::new(map_expr_to_source(left, map)),
            right: Box::new(map_expr_to_source(right, map)),
            on: on
                .iter()
                .map(|(l, r)| (map.mediator_to_source(l), map.mediator_to_source(r)))
                .collect(),
        },
        // Other operators never cross the wrapper boundary; keep them
        // unchanged so the caller can still display the plan.
        other => other.map_children(&|child| map_expr_to_source(child, map)),
    }
}

/// Renames the fields of answer rows from the data-source name space back
/// into the mediator name space.
#[must_use]
pub fn map_rows_to_mediator(rows: &Bag, map: &TypeMap) -> Bag {
    if map.is_identity() {
        return rows.clone();
    }
    rows.iter()
        .map(|v| match v {
            Value::Struct(s) => Value::Struct(s.rename_fields(|f| Some(map.source_to_mediator(f)))),
            other => other.clone(),
        })
        .collect()
}

/// Checks that every struct row carries the attributes the mediator type
/// expects — the run-time type check the paper requires of wrappers
/// ("the wrapper checks that these types are indeed the same", §2.1,
/// §2.2.2).
///
/// # Errors
///
/// Returns [`WrapperError::TypeConflict`] naming the first missing
/// attribute.
pub fn check_type_conformance(
    rows: &Bag,
    expected_attributes: &[String],
    extent: &str,
) -> Result<(), WrapperError> {
    for row in rows {
        if let Value::Struct(s) = row {
            for attr in expected_attributes {
                if !s.has_field(attr) {
                    return Err(WrapperError::TypeConflict {
                        extent: extent.to_owned(),
                        missing_attribute: attr.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Projects `expected_attributes` out of the check when the pushed
/// expression already narrowed the rows (a projected answer legitimately
/// lacks the other attributes).
#[must_use]
pub fn expected_after_expr(expr: &LogicalExpr, expected_attributes: &[String]) -> Vec<String> {
    fn output_columns(expr: &LogicalExpr) -> Option<Vec<String>> {
        match expr {
            LogicalExpr::Project { columns, .. } => Some(columns.clone()),
            LogicalExpr::Filter { input, .. } => output_columns(input),
            LogicalExpr::Submit { expr, .. } => output_columns(expr),
            _ => None,
        }
    }
    match output_columns(expr) {
        Some(cols) => expected_attributes
            .iter()
            .filter(|a| cols.contains(a))
            .cloned()
            .collect(),
        None => expected_attributes.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{ScalarExpr, ScalarOp};
    use disco_value::StructValue;

    fn paper_map() -> TypeMap {
        TypeMap::builder()
            .relation("person0", "personprime0")
            .attribute("name", "n")
            .attribute("salary", "s")
            .build()
            .unwrap()
    }

    #[test]
    fn expr_is_rewritten_into_source_namespace() {
        // Mediator-side: project(n, select(s > 10, get(personprime0)))
        let expr = LogicalExpr::get("personprime0")
            .filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::attr("s"),
                ScalarExpr::constant(10i64),
            ))
            .project(["n"]);
        let mapped = map_expr_to_source(&expr, &paper_map());
        assert_eq!(
            mapped.to_string(),
            "project(name, select((salary > 10), get(person0)))"
        );
        // Identity maps leave the expression untouched.
        let id = TypeMap::new();
        assert_eq!(map_expr_to_source(&expr, &id), expr);
    }

    #[test]
    fn answer_rows_are_renamed_back_to_mediator_attributes() {
        let rows: Bag = [Value::Struct(
            StructValue::new(vec![
                ("name", Value::from("Mary")),
                ("salary", Value::Int(200)),
            ])
            .unwrap(),
        )]
        .into_iter()
        .collect();
        let mapped = map_rows_to_mediator(&rows, &paper_map());
        let row = mapped.iter().next().unwrap().as_struct().unwrap();
        assert!(row.has_field("n"));
        assert!(row.has_field("s"));
        assert!(!row.has_field("name"));
    }

    #[test]
    fn type_conformance_detects_missing_attributes() {
        let rows: Bag = [Value::Struct(
            StructValue::new(vec![("name", Value::from("Mary"))]).unwrap(),
        )]
        .into_iter()
        .collect();
        let ok = check_type_conformance(&rows, &["name".to_owned()], "person0");
        assert!(ok.is_ok());
        let err =
            check_type_conformance(&rows, &["name".to_owned(), "salary".to_owned()], "person0")
                .unwrap_err();
        assert!(matches!(err, WrapperError::TypeConflict { .. }));
        // Non-struct rows (projected scalars) are not checked.
        let scalars: Bag = [Value::from("Mary")].into_iter().collect();
        assert!(check_type_conformance(&scalars, &["name".to_owned()], "person0").is_ok());
    }

    #[test]
    fn expected_attributes_shrink_after_projection() {
        let expected = vec!["name".to_owned(), "salary".to_owned()];
        let projected = LogicalExpr::get("person0").project(["name"]);
        assert_eq!(expected_after_expr(&projected, &expected), vec!["name"]);
        let unprojected = LogicalExpr::get("person0");
        assert_eq!(expected_after_expr(&unprojected, &expected), expected);
    }
}
