use std::fmt;

/// Errors produced by wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum WrapperError {
    /// The data source (or the simulated network path to it) did not
    /// answer.  The runtime turns this into "unavailable" for partial
    /// evaluation.
    Unavailable {
        /// The repository / endpoint name.
        endpoint: String,
    },
    /// The pushed expression uses an operator the wrapper does not support.
    Capability(disco_algebra::AlgebraError),
    /// The type of the objects in the data source does not match the
    /// mediator type (the §2.2.2 run-time error when no map resolves the
    /// conflict).
    TypeConflict {
        /// The extent being accessed.
        extent: String,
        /// The attribute the mediator expected but the source rows lack.
        missing_attribute: String,
    },
    /// An error from the underlying simulated source.
    Source(disco_source::SourceError),
    /// An evaluation error inside the wrapper.
    Algebra(disco_algebra::AlgebraError),
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::Unavailable { endpoint } => {
                write!(f, "data source unavailable: {endpoint}")
            }
            WrapperError::Capability(err) => write!(f, "capability violation: {err}"),
            WrapperError::TypeConflict {
                extent,
                missing_attribute,
            } => write!(
                f,
                "type conflict on extent {extent}: source rows lack attribute {missing_attribute}"
            ),
            WrapperError::Source(err) => write!(f, "source error: {err}"),
            WrapperError::Algebra(err) => write!(f, "evaluation error: {err}"),
        }
    }
}

impl std::error::Error for WrapperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WrapperError::Source(err) => Some(err),
            WrapperError::Capability(err) | WrapperError::Algebra(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_source::SourceError> for WrapperError {
    fn from(err: disco_source::SourceError) -> Self {
        match err {
            disco_source::SourceError::Unavailable { endpoint } => {
                WrapperError::Unavailable { endpoint }
            }
            other => WrapperError::Source(other),
        }
    }
}

impl From<disco_algebra::AlgebraError> for WrapperError {
    fn from(err: disco_algebra::AlgebraError) -> Self {
        match err {
            disco_algebra::AlgebraError::CapabilityViolation { .. } => {
                WrapperError::Capability(err)
            }
            other => WrapperError::Algebra(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = WrapperError::Unavailable {
            endpoint: "r0".into(),
        };
        assert_eq!(e.to_string(), "data source unavailable: r0");
        let e: WrapperError = disco_source::SourceError::Unavailable {
            endpoint: "r1".into(),
        }
        .into();
        assert!(matches!(e, WrapperError::Unavailable { .. }));
        let e: WrapperError = disco_algebra::AlgebraError::CapabilityViolation {
            operator: "join".into(),
            wrapper: "w".into(),
        }
        .into();
        assert!(matches!(e, WrapperError::Capability(_)));
        let e: WrapperError = disco_algebra::AlgebraError::DivisionByZero.into();
        assert!(matches!(e, WrapperError::Algebra(_)));
    }
}
