//! # disco-wrapper
//!
//! The wrapper layer of DISCO (§1.4, §3.2): the [`Wrapper`] trait through
//! which the mediator ships logical expressions to data sources, the
//! shared evaluator for pushed expressions, concrete wrappers for the
//! simulated sources (relational, CSV, document), application of local
//! transformation maps at the boundary, and the run-time type check.
//!
//! Each wrapper advertises a [`disco_algebra::CapabilitySet`] via
//! `capabilities()` (the paper's `submit-functionality` call); the
//! optimizer only pushes expressions a wrapper accepts, and the wrapper
//! re-checks at run time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv_wrapper;
mod document_wrapper;
mod error;
mod eval;
mod interface;
mod mapping;
mod relational_wrapper;
mod streaming;

pub use csv_wrapper::CsvWrapper;
pub use document_wrapper::DocumentWrapper;
pub use error::WrapperError;
pub use eval::{eval_pushed, PushedResult, RowProvider};
pub use interface::{AnswerSink, AnswerSummary, Wrapper, WrapperAnswer, WrapperRegistry};
pub use mapping::{
    check_type_conformance, expected_after_expr, map_expr_to_source, map_rows_to_mediator,
};
pub use relational_wrapper::RelationalWrapper;

/// Convenience result alias for wrapper operations.
pub type Result<T> = std::result::Result<T, WrapperError>;
