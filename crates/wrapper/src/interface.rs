//! The DISCO wrapper interface (§1.4, §3.2) and the wrapper registry.
//!
//! "DISCO interfaces to wrappers at the level of an abstract algebraic
//! machine of logical operators.  When the DBI implements a new wrapper,
//! she chooses a (sub)set of logical operators to support" and exposes it
//! through the `submit-functionality` method; during query processing the
//! mediator ships logical expressions through `submit`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use disco_algebra::{CapabilityLookup, CapabilitySet, LogicalExpr};
use disco_value::Bag;
use parking_lot::RwLock;

use crate::WrapperError;

/// The answer a wrapper returns from a `submit` call.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapperAnswer {
    /// The rows produced by the pushed expression (still in the data
    /// source's name space; the runtime applies the extent's map).
    pub rows: Bag,
    /// How many rows the source had to touch to answer — the measure of
    /// source-side work used by the pushdown experiments.
    pub rows_scanned: usize,
    /// The simulated network + processing latency of the call.
    pub latency: Duration,
}

impl WrapperAnswer {
    /// Number of rows returned to the mediator — the measure of data
    /// transferred over the (simulated) network.
    #[must_use]
    pub fn rows_returned(&self) -> usize {
        self.rows.len()
    }
}

/// What a streamed `submit` call reports once every chunk has been
/// delivered: [`WrapperAnswer`] minus the rows, which already went through
/// the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerSummary {
    /// How many rows the source had to touch to answer.
    pub rows_scanned: usize,
    /// Total simulated network + processing latency across all chunks.
    pub latency: Duration,
}

/// The consumer side of a streamed `submit` call.
///
/// The runtime hands one of these to [`Wrapper::submit_streaming`]; the
/// wrapper pushes row chunks as the (simulated) source produces them.  A
/// `false` return from [`AnswerSink::push`] — or a `true` from
/// [`AnswerSink::is_cancelled`], which wrappers should poll between units
/// of source-side work — means the consumer has disconnected (typically
/// the query's deadline expired): the wrapper should stop producing and
/// return, so a timed-out call never keeps running in the background.
pub trait AnswerSink {
    /// Delivers one chunk of rows (source name space).  Returns `false`
    /// when the consumer has disconnected and the wrapper should stop.
    fn push(&mut self, rows: Bag) -> bool;

    /// Whether the consumer has disconnected.  Wrappers poll this between
    /// chunks (and, for simulated links, between sleep slices).
    fn is_cancelled(&self) -> bool {
        false
    }
}

/// The wrapper interface.
///
/// A wrapper translates between the mediator's algebraic machine and one
/// kind of data source.  Implementations in this crate:
/// [`crate::RelationalWrapper`], [`crate::CsvWrapper`],
/// [`crate::DocumentWrapper`].
pub trait Wrapper: Send + Sync {
    /// The wrapper object's name in the catalog (e.g. `w0`).
    fn name(&self) -> &str;

    /// The wrapper kind (e.g. `relational`, `csv`, `document`).
    fn kind(&self) -> &str;

    /// The `submit-functionality` call: the set of logical operators (and
    /// composition / comparison restrictions) this wrapper supports.
    fn capabilities(&self) -> CapabilitySet;

    /// Evaluates a logical expression already rewritten into the data
    /// source's name space.
    ///
    /// # Errors
    ///
    /// Returns [`WrapperError::Unavailable`] when the source does not
    /// answer, [`WrapperError::Capability`] when the expression exceeds the
    /// advertised capabilities, and evaluation errors otherwise.
    fn submit(&self, expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError>;

    /// The streaming form of [`Wrapper::submit`]: row chunks are pushed
    /// into `sink` as the source produces them, and the call summary
    /// (rows scanned, total latency) is returned at the end.
    ///
    /// The default implementation is a shim over [`Wrapper::submit`] that
    /// delivers the whole answer as one chunk — correct for any wrapper,
    /// just without intra-call overlap.  Wrappers over chunk-capable
    /// links (e.g. [`crate::RelationalWrapper`]) override it to emit
    /// chunks under the link's latency profile and to honour
    /// cancellation between chunks.
    ///
    /// # Errors
    ///
    /// Same error contract as [`Wrapper::submit`].
    fn submit_streaming(
        &self,
        expr: &LogicalExpr,
        sink: &mut dyn AnswerSink,
    ) -> Result<AnswerSummary, WrapperError> {
        let answer = self.submit(expr)?;
        let summary = AnswerSummary {
            rows_scanned: answer.rows_scanned,
            latency: answer.latency,
        };
        sink.push(answer.rows);
        Ok(summary)
    }

    /// Whether the source currently answers (used by experiments to probe
    /// without paying for a full call).
    fn is_available(&self) -> bool {
        true
    }
}

/// A shared, thread-safe registry binding catalog wrapper names to wrapper
/// implementations.
///
/// The registry also serves as the optimizer's [`CapabilityLookup`]: the
/// transformation rules consult it before pushing operators.
#[derive(Clone, Default)]
pub struct WrapperRegistry {
    wrappers: Arc<RwLock<BTreeMap<String, Arc<dyn Wrapper>>>>,
}

impl WrapperRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        WrapperRegistry::default()
    }

    /// Registers (or replaces) a wrapper under its own name.
    pub fn register(&self, wrapper: Arc<dyn Wrapper>) {
        self.wrappers
            .write()
            .insert(wrapper.name().to_owned(), wrapper);
    }

    /// Looks up a wrapper by name.
    #[must_use]
    pub fn wrapper(&self, name: &str) -> Option<Arc<dyn Wrapper>> {
        self.wrappers.read().get(name).cloned()
    }

    /// The registered wrapper names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.wrappers.read().keys().cloned().collect()
    }

    /// Number of registered wrappers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wrappers.read().len()
    }

    /// Returns `true` when no wrapper is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wrappers.read().is_empty()
    }
}

impl std::fmt::Debug for WrapperRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WrapperRegistry")
            .field("wrappers", &self.names())
            .finish()
    }
}

impl CapabilityLookup for WrapperRegistry {
    fn capabilities(&self, wrapper: &str) -> Option<CapabilitySet> {
        self.wrapper(wrapper).map(|w| w.capabilities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummyWrapper;

    impl Wrapper for DummyWrapper {
        fn name(&self) -> &str {
            "w_dummy"
        }
        fn kind(&self) -> &str {
            "dummy"
        }
        fn capabilities(&self) -> CapabilitySet {
            CapabilitySet::get_only()
        }
        fn submit(&self, _expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
            Ok(WrapperAnswer {
                rows: Bag::new(),
                rows_scanned: 0,
                latency: Duration::ZERO,
            })
        }
    }

    #[test]
    fn registry_registers_and_looks_up() {
        let registry = WrapperRegistry::new();
        assert!(registry.is_empty());
        registry.register(Arc::new(DummyWrapper));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["w_dummy"]);
        assert!(registry.wrapper("w_dummy").is_some());
        assert!(registry.wrapper("missing").is_none());
    }

    #[test]
    fn registry_is_a_capability_lookup() {
        let registry = WrapperRegistry::new();
        registry.register(Arc::new(DummyWrapper));
        let caps = CapabilityLookup::capabilities(&registry, "w_dummy").unwrap();
        assert_eq!(caps, CapabilitySet::get_only());
        assert!(CapabilityLookup::capabilities(&registry, "missing").is_none());
    }

    #[test]
    fn wrapper_answer_counts_rows() {
        let answer = WrapperAnswer {
            rows: [disco_value::Value::Int(1), disco_value::Value::Int(2)]
                .into_iter()
                .collect(),
            rows_scanned: 10,
            latency: Duration::from_millis(1),
        };
        assert_eq!(answer.rows_returned(), 2);
        assert_eq!(answer.rows_scanned, 10);
    }
}
