//! Wrapper for the keyword-document (WAIS-style) source.
//!
//! The source's native operation is a keyword lookup, so the wrapper
//! advertises `get` plus `select` restricted to equality comparisons and
//! no composition — the "less powerful query capability" servers that the
//! paper's related-work section says other systems do not handle.

use std::sync::Arc;

use disco_algebra::{
    AlgebraError, CapabilitySet, ComparisonKind, LogicalExpr, OperatorKind, ScalarExpr, ScalarOp,
};
use disco_source::{DocumentStore, SimulatedLink};
use disco_value::Value;

use crate::interface::{AnswerSink, AnswerSummary, Wrapper, WrapperAnswer};
use crate::WrapperError;

/// A wrapper over a [`DocumentStore`], supporting `get` and
/// equality-only `select` (no composition).
pub struct DocumentWrapper {
    name: String,
    store: Arc<DocumentStore>,
    link: Arc<SimulatedLink>,
}

impl DocumentWrapper {
    /// Creates the wrapper.
    pub fn new(
        name: impl Into<String>,
        store: Arc<DocumentStore>,
        link: Arc<SimulatedLink>,
    ) -> Self {
        DocumentWrapper {
            name: name.into(),
            store,
            link,
        }
    }

    /// The simulated link.
    #[must_use]
    pub fn link(&self) -> &Arc<SimulatedLink> {
        &self.link
    }

    fn capability_violation(&self, operator: &str) -> WrapperError {
        WrapperError::Capability(AlgebraError::CapabilityViolation {
            operator: operator.to_owned(),
            wrapper: self.name.clone(),
        })
    }

    /// Checks the pushed expression and answers it from the store: the
    /// shared front half of [`Wrapper::submit`] and
    /// [`Wrapper::submit_streaming`], everything except latency
    /// accounting and delivery.
    fn fetch(&self, expr: &LogicalExpr) -> Result<(Vec<Value>, usize), WrapperError> {
        self.capabilities()
            .accepts_named(expr, &self.name)
            .map_err(WrapperError::Capability)?;
        if !self.link.is_available() {
            return Err(WrapperError::Unavailable {
                endpoint: self.link.endpoint().to_owned(),
            });
        }
        let (rows, scanned) = match expr {
            LogicalExpr::Get { .. } => {
                let rows = self.store.scan();
                let n = rows.len();
                (rows, n)
            }
            LogicalExpr::Filter { input, predicate } => {
                if !matches!(input.as_ref(), LogicalExpr::Get { .. }) {
                    return Err(self.capability_violation("select over non-get"));
                }
                let Some((attr, value)) = Self::equality_lookup(predicate) else {
                    return Err(self.capability_violation("non-equality predicate"));
                };
                if attr == "keyword" {
                    // Native keyword index: only matching documents are touched.
                    let keyword = value.as_str().map_err(AlgebraError::from)?.to_owned();
                    let rows = self.store.search(&keyword);
                    let n = rows.len();
                    (rows, n)
                } else {
                    // Equality on another attribute: scan then filter.
                    let all = self.store.scan();
                    let scanned = all.len();
                    let rows: Vec<_> = all
                        .into_iter()
                        .filter(|row| row.field(&attr).map(|v| v == &value).unwrap_or(false))
                        .collect();
                    (rows, scanned)
                }
            }
            other => return Err(self.capability_violation(other.op_name())),
        };
        Ok((rows.into_iter().map(Value::Struct).collect(), scanned))
    }

    /// Extracts `attr = "literal"` from a pushed predicate.
    fn equality_lookup(predicate: &ScalarExpr) -> Option<(String, Value)> {
        if let ScalarExpr::Binary {
            op: ScalarOp::Eq,
            left,
            right,
        } = predicate
        {
            match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Attr(a), ScalarExpr::Const(v))
                | (ScalarExpr::Const(v), ScalarExpr::Attr(a)) => Some((a.clone(), v.clone())),
                _ => None,
            }
        } else {
            None
        }
    }
}

impl std::fmt::Debug for DocumentWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocumentWrapper")
            .field("name", &self.name)
            .field("documents", &self.store.len())
            .finish()
    }
}

impl Wrapper for DocumentWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "document"
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::new([OperatorKind::Get, OperatorKind::Select])
            .with_comparisons([ComparisonKind::Eq])
    }

    fn submit(&self, expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        let (rows, rows_scanned) = self.fetch(expr)?;
        let latency =
            self.link
                .call_delay(rows.len())
                .ok_or_else(|| WrapperError::Unavailable {
                    endpoint: self.link.endpoint().to_owned(),
                })?;
        Ok(WrapperAnswer {
            rows: rows.into_iter().collect(),
            rows_scanned,
            latency,
        })
    }

    fn submit_streaming(
        &self,
        expr: &LogicalExpr,
        sink: &mut dyn AnswerSink,
    ) -> Result<AnswerSummary, WrapperError> {
        let (rows, rows_scanned) = self.fetch(expr)?;
        crate::streaming::stream_chunks(&self.link, rows, rows_scanned, sink)
    }

    fn is_available(&self) -> bool {
        self.link.is_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_source::{generator, NetworkProfile};

    fn wrapper() -> DocumentWrapper {
        let store = Arc::new(generator::document_store(40, 3));
        let link = Arc::new(SimulatedLink::new("r_doc", NetworkProfile::fast(), 9));
        DocumentWrapper::new("w_doc", store, link)
    }

    #[test]
    fn get_scans_every_document() {
        let w = wrapper();
        let answer = w.submit(&LogicalExpr::get("documents")).unwrap();
        assert_eq!(answer.rows_returned(), 40);
        assert_eq!(w.kind(), "document");
    }

    #[test]
    fn keyword_equality_uses_the_native_index() {
        let w = wrapper();
        let expr = LogicalExpr::get("documents").filter(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("keyword"),
            ScalarExpr::constant("water"),
        ));
        let answer = w.submit(&expr).unwrap();
        assert!(answer.rows_returned() > 0);
        assert!(answer.rows_returned() < 40);
        // Native index: rows_scanned equals the number of hits, not the
        // collection size.
        assert_eq!(answer.rows_scanned, answer.rows_returned());
    }

    #[test]
    fn equality_on_other_attributes_scans_then_filters() {
        let w = wrapper();
        let expr = LogicalExpr::get("documents").filter(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("id"),
            ScalarExpr::constant(3i64),
        ));
        let answer = w.submit(&expr).unwrap();
        assert_eq!(answer.rows_returned(), 1);
        assert_eq!(answer.rows_scanned, 40);
    }

    #[test]
    fn streaming_chunks_keyword_hits_and_honours_cancellation() {
        struct Collect {
            chunks: Vec<usize>,
            cancel_after: usize,
        }
        impl crate::AnswerSink for Collect {
            fn push(&mut self, rows: disco_value::Bag) -> bool {
                self.chunks.push(rows.len());
                self.chunks.len() < self.cancel_after
            }
        }
        let store = Arc::new(generator::document_store(40, 3));
        let link = Arc::new(SimulatedLink::new(
            "r_doc",
            NetworkProfile::fast().with_chunk_rows(8),
            9,
        ));
        let w = DocumentWrapper::new("w_doc", store, link);
        let mut sink = Collect {
            chunks: Vec::new(),
            cancel_after: usize::MAX,
        };
        let summary = w
            .submit_streaming(&LogicalExpr::get("documents"), &mut sink)
            .unwrap();
        assert_eq!(sink.chunks, vec![8, 8, 8, 8, 8]);
        assert_eq!(summary.rows_scanned, 40);
        // A sink that disconnects after the first chunk stops the stream.
        let mut early = Collect {
            chunks: Vec::new(),
            cancel_after: 1,
        };
        let summary = w
            .submit_streaming(&LogicalExpr::get("documents"), &mut early)
            .unwrap();
        assert_eq!(early.chunks, vec![8], "stream stops at disconnect");
        assert_eq!(summary.rows_scanned, 40);
    }

    #[test]
    fn range_predicates_and_projections_are_rejected() {
        let w = wrapper();
        let range = LogicalExpr::get("documents").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("id"),
            ScalarExpr::constant(3i64),
        ));
        assert!(matches!(
            w.submit(&range).unwrap_err(),
            WrapperError::Capability(_)
        ));
        let project = LogicalExpr::get("documents").project(["title"]);
        assert!(matches!(
            w.submit(&project).unwrap_err(),
            WrapperError::Capability(_)
        ));
    }
}
