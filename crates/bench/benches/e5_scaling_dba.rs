//! E5 — DBA effort per added source (bench counterpart).
//!
//! Measures registering one more data source into an existing federation
//! and resolving the implicit extent afterwards — both must stay flat as
//! the federation grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_bench::workloads::water_federation;
use disco_core::{CapabilitySet, NetworkProfile};
use disco_source::generator;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_scaling_dba");
    group.sample_size(20);
    for &n in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("register_one_more", n), &n, |b, &n| {
            b.iter_batched(
                || (water_federation(n, 10), 0usize),
                |(mut federation, _)| {
                    federation
                        .mediator
                        .add_relational_source(
                            "measurement_new",
                            "Measurement",
                            "r_new",
                            generator::water_quality_table("measurement_new", n + 1, 10, 5),
                            NetworkProfile::fast(),
                            CapabilitySet::full(),
                        )
                        .unwrap();
                    federation
                },
                criterion::BatchSize::SmallInput,
            );
        });
        let federation = water_federation(n, 10);
        group.bench_with_input(
            BenchmarkId::new("resolve_implicit_extent", n),
            &n,
            |b, _| {
                b.iter(|| {
                    federation
                        .mediator
                        .catalog()
                        .resolve("measurement")
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
