//! E12 — memory-budgeted spilling (bench counterpart).
//!
//! A hash join and a distinct whose breaker state is ~10x the configured
//! memory budget: the build table / seen-set hash-partitions to disk and
//! recurses per partition, keeping tracked bytes near the budget while
//! the answers stay identical to the unbounded path.  The full sweep
//! (with the `BENCH_e12.json` record) lives in `harness e12`; this bench
//! keeps the path under the CI bitrot guard.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::experiments::{e12_spill, Scale};

fn bench_spill(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_spill");
    group.sample_size(10);
    group.bench_function("join_and_distinct_at_10x_budget_quick", |b| {
        b.iter(|| e12_spill(Scale::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
