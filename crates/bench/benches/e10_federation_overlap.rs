//! E10 — federation overlap (bench counterpart).
//!
//! Streamed vs blocking source resolution over a federation with one
//! degraded (~10x slower) source: the streamed path combines fast
//! sources' chunks while the slow wrapper is still answering, so
//! wall-clock tracks the slowest source alone instead of slowest +
//! combine.  The full sweep (with the `BENCH_e10.json` record) lives in
//! `harness e10`; this bench keeps the path under the CI bitrot guard.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::experiments::{e10_federation_overlap, e10_heterogeneous_adaptive, Scale};

fn bench_federation_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_federation_overlap");
    group.sample_size(10);
    group.bench_function("streamed_vs_blocking_quick", |b| {
        b.iter(|| e10_federation_overlap(Scale::quick()));
    });
    // E10h smoke: adaptive vs pinned scheduling over the same skewed
    // federation, with its answer-equivalence assertions live.
    group.bench_function("heterogeneous_adaptive_quick", |b| {
        b.iter(|| e10_heterogeneous_adaptive(Scale::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_federation_overlap);
criterion_main!(benches);
