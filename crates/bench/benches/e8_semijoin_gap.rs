//! E8 — join placement (bench counterpart).
//!
//! Measures a join pushed into a single repository against the same join
//! executed at the mediator over two repositories.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::experiments::{e8_semijoin_gap, Scale};
use disco_bench::workloads::employee_federation;

fn bench_semijoin_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_semijoin_gap");
    group.sample_size(10);
    group.bench_function("report_quick", |b| {
        b.iter(|| e8_semijoin_gap(Scale::quick()));
    });
    let federation = employee_federation(200, 8);
    group.bench_function("mediator_join_query", |b| {
        b.iter(|| {
            federation
                .mediator
                .query(
                    "select struct(e: x.name, m: y.name) \
                     from x in employee0, y in manager0 where x.dept = y.dept",
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_semijoin_gap);
criterion_main!(benches);
