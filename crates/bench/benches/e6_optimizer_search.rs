//! E6 — optimizer search (bench counterpart).
//!
//! Measures compilation + alternative generation + costing for queries of
//! increasing shape complexity and federation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_bench::workloads::person_federation;
use disco_core::CapabilitySet;

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_optimizer_search");
    group.sample_size(30);
    let cases = [
        (
            "point",
            2,
            "select x.name from x in person0 where x.salary > 400",
        ),
        (
            "union_8_sources",
            8,
            "select x.name from x in person where x.salary > 400",
        ),
        (
            "join",
            2,
            "select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id",
        ),
        ("aggregate", 8, "sum(select x.salary from x in person)"),
    ];
    for (label, sources, query) in cases {
        let federation = person_federation(sources, 50, CapabilitySet::full());
        group.bench_with_input(BenchmarkId::new("explain", label), &label, |b, _| {
            b.iter(|| federation.mediator.explain(query).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
