//! E7 — the Prototype 0 pipeline (bench counterpart of Fig. 2).
//!
//! Measures each stage of the pipeline — parse, optimize, execute — and
//! the end-to-end path for the mixed workload query.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::workloads::person_federation;
use disco_core::CapabilitySet;
use disco_oql::parse_query;
use disco_runtime::Executor;

const QUERY: &str = "select x.name from x in person where x.salary > 250";

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pipeline");
    group.sample_size(30);
    let federation = person_federation(4, 100, CapabilitySet::full());
    group.bench_function("parse", |b| {
        b.iter(|| parse_query(QUERY).unwrap());
    });
    group.bench_function("optimize", |b| {
        b.iter(|| federation.mediator.explain(QUERY).unwrap());
    });
    let plan = federation.mediator.explain(QUERY).unwrap();
    let executor = Executor::new(federation.mediator.registry().clone());
    group.bench_function("execute", |b| {
        b.iter(|| {
            executor
                .execute(&plan.physical, federation.mediator.catalog())
                .unwrap()
        });
    });
    group.bench_function("end_to_end", |b| {
        b.iter(|| federation.mediator.query(QUERY).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
