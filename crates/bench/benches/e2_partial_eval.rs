//! E2 — partial evaluation and resubmission (bench counterpart).
//!
//! Measures the cost of producing a partial answer (rewriting the
//! unfinished plan back to OQL) and of resubmitting it after recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::workloads::person_federation;
use disco_core::{Availability, CapabilitySet};

const QUERY: &str = "select x.name from x in person where x.salary > 250";

fn bench_partial_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_partial_eval");
    group.sample_size(20);
    let federation = person_federation(8, 50, CapabilitySet::full());

    federation.links[0].set_availability(Availability::Unavailable);
    federation.links[1].set_availability(Availability::Unavailable);
    group.bench_function("produce_partial_answer", |b| {
        b.iter(|| {
            let answer = federation.mediator.query(QUERY).unwrap();
            assert!(!answer.is_complete());
            answer.as_query_text()
        });
    });
    let partial = federation.mediator.query(QUERY).unwrap();

    for link in &federation.links {
        link.set_availability(Availability::Available);
    }
    group.bench_function("resubmit_after_recovery", |b| {
        b.iter(|| {
            let recovered = federation.mediator.resubmit(&partial).unwrap();
            assert!(recovered.is_complete());
            recovered
        });
    });
    group.finish();
}

criterion_group!(benches, bench_partial_eval);
criterion_main!(benches);
