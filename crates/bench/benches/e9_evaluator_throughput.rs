//! E9 — mediator evaluator throughput (the "combine step").
//!
//! Drives the physical evaluator directly over in-memory bags — no
//! wrappers, no network simulation — so the numbers isolate the cost of
//! the mediator-side combine step that §3.3's `mkunion`/join/distinct
//! algorithms implement.  Pipelines: filter, project (map), hash join,
//! and distinct over 10k–100k-row person bags, built by the same
//! [`disco_bench::workloads`] helpers the harness E9 experiment uses.
//!
//! This bench is the before/after yardstick for the combine-step
//! optimisations: the zero-clone value plane (Arc-backed rows, a real
//! `HashMap` join table, the layered row environment) and the streaming
//! cursor engine (pull-based pipelines that only materialize at pipeline
//! breakers, lazy hash-join output rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
use disco_bench::workloads::{
    e9_deep_pipeline_plan, e9_distinct_plan, e9_filter_project_plan, e9_hash_join_plan,
    e9_person_bag,
};
use disco_runtime::{
    evaluate_physical, evaluate_physical_with_options, ColumnarMode, PipelineOptions, ResolvedExecs,
};

fn bench_evaluator(c: &mut Criterion) {
    let resolved = ResolvedExecs::default();
    let mut group = c.benchmark_group("e9_evaluator_throughput");
    group.sample_size(10);

    for &rows in &[10_000usize, 100_000] {
        let plan = lower(&e9_filter_project_plan(rows)).expect("lowers");
        group.bench_with_input(BenchmarkId::new("filter_project", rows), &rows, |b, _| {
            b.iter(|| evaluate_physical(&plan, &resolved).unwrap());
        });
    }

    // Hash join: |left| = rows, |right| = rows / 10, shared id space so
    // every right row matches ~10 left rows.
    for &rows in &[10_000usize, 100_000] {
        let plan = lower(&e9_hash_join_plan(rows)).expect("lowers");
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, _| {
            b.iter(|| evaluate_physical(&plan, &resolved).unwrap());
        });
    }

    for &rows in &[10_000usize, 100_000] {
        let plan = lower(&e9_distinct_plan(rows)).expect("lowers");
        group.bench_with_input(BenchmarkId::new("distinct", rows), &rows, |b, _| {
            b.iter(|| evaluate_physical(&plan, &resolved).unwrap());
        });
    }

    // Deep pipeline (filter → hash-join → project → distinct): four
    // chained operators, of which only the join build side and the
    // distinct seen-set buffer rows under the streaming engine.
    for &rows in &[10_000usize, 100_000] {
        let plan = lower(&e9_deep_pipeline_plan(rows)).expect("lowers");
        group.bench_with_input(BenchmarkId::new("deep_pipeline", rows), &rows, |b, _| {
            b.iter(|| evaluate_physical(&plan, &resolved).unwrap());
        });
    }

    // Nested-loop join at a smaller scale (quadratic): the baseline the
    // hash join is compared against.
    let nl_plan = lower(
        &LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(e9_person_bag(1_000, 1024)).bind("x")),
            right: Box::new(LogicalExpr::Data(e9_person_bag(100, 1024)).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Lt,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name")),
    )
    .expect("lowers");
    group.bench_function("nested_loop_join/1000x100", |b| {
        b.iter(|| evaluate_physical(&nl_plan, &resolved).unwrap());
    });

    // Mode-pinned twins of the vectorized hash join, so the bitrot smoke
    // exercises the columnar join and its exact row path regardless of
    // the `DISCO_COLUMNAR` default the CI step happens to set.
    let pinned_join_plan = lower(&e9_hash_join_plan(100_000)).expect("lowers");
    for (label, columnar) in [("col", ColumnarMode::On), ("row", ColumnarMode::Off)] {
        let options = PipelineOptions {
            columnar,
            ..PipelineOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("hash_join_100k_columnar", label),
            &label,
            |b, _| {
                b.iter(|| {
                    evaluate_physical_with_options(&pinned_join_plan, &resolved, options).unwrap()
                });
            },
        );
    }

    // Thread-scaling variants of the two heaviest pipelines through the
    // morsel-driven parallel engine (`threads = 1` is the serial path, so
    // the 1-thread rows double as the parallel engine's overhead guard).
    let hash_join_plan = lower(&e9_hash_join_plan(100_000)).expect("lowers");
    let deep_plan = lower(&e9_deep_pipeline_plan(100_000)).expect("lowers");
    for &threads in &[1usize, 2, 4, 8] {
        let options = PipelineOptions {
            threads,
            ..PipelineOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("hash_join_100k_threads", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    evaluate_physical_with_options(&hash_join_plan, &resolved, options).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("deep_pipeline_100k_threads", threads),
            &threads,
            |b, _| {
                b.iter(|| evaluate_physical_with_options(&deep_plan, &resolved, options).unwrap());
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_evaluator);
criterion_main!(benches);
