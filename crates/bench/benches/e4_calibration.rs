//! E4 — the self-calibrating cost store (bench counterpart).
//!
//! Measures recording an observation and the three lookup paths (exact,
//! close, default), plus optimization with a warm store.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_algebra::{LogicalExpr, ScalarExpr, ScalarOp};
use disco_bench::workloads::person_federation;
use disco_core::CapabilitySet;
use disco_optimizer::CalibrationStore;

fn filter_plan(threshold: i64) -> LogicalExpr {
    LogicalExpr::get("person0").filter(ScalarExpr::binary(
        ScalarOp::Gt,
        ScalarExpr::attr("salary"),
        ScalarExpr::constant(threshold),
    ))
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_calibration");
    group.sample_size(30);
    let store = CalibrationStore::new();
    for i in 0..8 {
        store.record("r0", &filter_plan(10), 5.0 + f64::from(i), 40);
    }
    group.bench_function("record", |b| {
        b.iter(|| store.record("r0", &filter_plan(10), 6.0, 42));
    });
    group.bench_function("estimate_exact", |b| {
        b.iter(|| store.estimate("r0", &filter_plan(10)));
    });
    group.bench_function("estimate_close", |b| {
        b.iter(|| store.estimate("r0", &filter_plan(9999)));
    });
    group.bench_function("estimate_default", |b| {
        b.iter(|| store.estimate("r9", &filter_plan(10)));
    });
    let federation = person_federation(4, 100, CapabilitySet::full());
    // Warm the store through a few executions, then bench optimization.
    for _ in 0..3 {
        federation
            .mediator
            .query("select x.name from x in person where x.salary > 250")
            .unwrap();
    }
    group.bench_function("optimize_with_warm_store", |b| {
        b.iter(|| {
            federation
                .mediator
                .explain("select x.name from x in person where x.salary > 250")
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
