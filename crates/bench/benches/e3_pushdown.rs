//! E3 — capability-based pushdown (bench counterpart).
//!
//! Measures query latency against the same data exposed through wrappers
//! of different power: pushing selections/projections to the source cuts
//! the rows flowing through the mediator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_bench::workloads::{capability_levels, person_federation};

const QUERY: &str = "select x.name from x in person where x.salary > 450";

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_pushdown");
    group.sample_size(20);
    for (label, caps) in capability_levels() {
        let federation = person_federation(2, 400, caps);
        group.bench_with_input(
            BenchmarkId::new("selective_query", label),
            &label,
            |b, _| {
                b.iter(|| federation.mediator.query(QUERY).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
