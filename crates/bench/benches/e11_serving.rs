//! E11 — multi-query serving layer (bench counterpart).
//!
//! N concurrent query streams through one `disco-server` instance:
//! shared plan cache, admission control, shared wrapper-connection
//! pool; every concurrent answer is asserted multiset-identical to the
//! serial baseline.  The full sweep (with the `BENCH_e11.json` record)
//! lives in `harness e11`; this bench keeps the path under the CI
//! bitrot guard.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_bench::experiments::{e11_serving, Scale};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_serving");
    group.sample_size(10);
    group.bench_function("concurrent_streams_quick", |b| {
        b.iter(|| e11_serving(Scale::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
