//! E1 — answer availability vs. federation size (bench counterpart).
//!
//! Measures end-to-end query latency over federations of increasing size,
//! with all sources available and with one quarter unavailable (partial
//! answers), showing that partial evaluation adds no significant overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_bench::workloads::person_federation;
use disco_core::{Availability, CapabilitySet};

const QUERY: &str = "select x.name from x in person where x.salary > 250";

fn bench_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_availability");
    group.sample_size(20);
    for &n in &[2usize, 8, 16] {
        let federation = person_federation(n, 50, CapabilitySet::full());
        group.bench_with_input(BenchmarkId::new("all_available", n), &n, |b, _| {
            b.iter(|| federation.mediator.query(QUERY).unwrap());
        });
        for (i, link) in federation.links.iter().enumerate() {
            if i % 4 == 0 {
                link.set_availability(Availability::Unavailable);
            }
        }
        group.bench_with_input(BenchmarkId::new("quarter_unavailable", n), &n, |b, _| {
            b.iter(|| federation.mediator.query(QUERY).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_availability);
criterion_main!(benches);
