//! One-off comparison of the streaming engine vs. the reference
//! (bag-at-a-time) evaluator over the E9 pipelines, on this machine,
//! plus a parallel column: the morsel-driven engine at
//! `COMPARE_THREADS` workers (default 4).  Used to refresh the ROADMAP
//! performance table.

use std::time::Instant;

use disco_algebra::lower;
use disco_bench::workloads::{
    e9_deep_pipeline_plan, e9_distinct_plan, e9_filter_project_plan, e9_hash_join_plan,
};
use disco_runtime::{
    evaluate_physical, evaluate_physical_with_options, reference, PipelineOptions, ResolvedExecs,
};

fn main() {
    let resolved = ResolvedExecs::default();
    let trials = 7;
    let threads = std::env::var("COMPARE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize);
    let parallel_options = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    let run = |name: &str, plan: &disco_algebra::LogicalExpr| {
        let physical = lower(plan).expect("lowers");
        let mut best_ref = f64::INFINITY;
        let mut best_stream = f64::INFINITY;
        let mut best_par = f64::INFINITY;
        for _ in 0..trials {
            let t = Instant::now();
            let a = reference::evaluate_physical(&physical, &resolved).unwrap();
            best_ref = best_ref.min(t.elapsed().as_secs_f64() * 1000.0);
            let t = Instant::now();
            let b = evaluate_physical(&physical, &resolved).unwrap();
            best_stream = best_stream.min(t.elapsed().as_secs_f64() * 1000.0);
            let t = Instant::now();
            let c = evaluate_physical_with_options(&physical, &resolved, parallel_options).unwrap();
            best_par = best_par.min(t.elapsed().as_secs_f64() * 1000.0);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), c.len());
        }
        println!(
            "{name:<24} reference {best_ref:>9.3} ms   serial {best_stream:>9.3} ms   \
             parallel({threads}t) {best_par:>9.3} ms   serial/par {:>5.2}x",
            best_stream / best_par
        );
    };

    for &rows in &[10_000usize, 100_000] {
        run(
            &format!("filter_project {rows}"),
            &e9_filter_project_plan(rows),
        );
    }
    for &rows in &[10_000usize, 100_000] {
        run(&format!("hash_join {rows}"), &e9_hash_join_plan(rows));
    }
    for &rows in &[10_000usize, 100_000] {
        run(&format!("distinct {rows}"), &e9_distinct_plan(rows));
    }
    for &rows in &[10_000usize, 100_000] {
        run(
            &format!("deep_pipeline {rows}"),
            &e9_deep_pipeline_plan(rows),
        );
    }

    // Isolation probes: where does the streaming tax come from?
    use disco_algebra::{LogicalExpr, ScalarExpr};
    use disco_bench::workloads::e9_person_bag;
    // (a) map-only pipeline (no distinct sink)
    let map_only = LogicalExpr::Data(e9_person_bag(100_000, 1024))
        .bind("x")
        .map_project(ScalarExpr::var_field("x", "name"));
    run("map_only 100000", &map_only);
    // (b) distinct directly over data (no upstream operators)
    let names: disco_value::Bag = e9_person_bag(100_000, 1024)
        .iter()
        .map(|p| p.as_struct().unwrap().field("name").unwrap().clone())
        .collect();
    let distinct_only = LogicalExpr::Distinct(Box::new(LogicalExpr::Data(names)));
    run("distinct_only 100000", &distinct_only);
    // (e) union8_distinct and nested_loop, the remaining E9 pipelines
    let union_bags: Vec<LogicalExpr> = (0..8)
        .map(|_| LogicalExpr::Data(e9_person_bag(100_000 / 8, 1024)))
        .collect();
    run(
        "union8_distinct 100000",
        &LogicalExpr::Distinct(Box::new(LogicalExpr::Union(union_bags))),
    );
    let nl = LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(e9_person_bag(1_000, 1024)).bind("x")),
        right: Box::new(LogicalExpr::Data(e9_person_bag(100, 1024)).bind("y")),
        predicate: Some(ScalarExpr::binary(
            disco_algebra::ScalarOp::Lt,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"));
    run("nested_loop 1000x100", &nl);
    // (c) the deep pipeline without its distinct sink
    let deep = e9_deep_pipeline_plan(100_000);
    if let LogicalExpr::Distinct(inner) = deep {
        run("deep_nodistinct 100000", &inner);
    }
    // (d) distinct over the struct rows the deep pipeline deduplicates
    let structs = {
        let resolved = disco_runtime::ResolvedExecs::default();
        let inner = match e9_deep_pipeline_plan(100_000) {
            LogicalExpr::Distinct(inner) => *inner,
            other => other,
        };
        let physical = lower(&inner).unwrap();
        evaluate_physical(&physical, &resolved).unwrap()
    };
    println!("struct rows: {}", structs.len());
    let distinct_structs = LogicalExpr::Distinct(Box::new(LogicalExpr::Data(structs)));
    run("distinct_structs", &distinct_structs);
}
