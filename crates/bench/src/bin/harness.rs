//! The experiment harness: regenerates every table in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p disco-bench --release --bin harness            # all experiments
//! cargo run -p disco-bench --release --bin harness -- e3      # one experiment
//! cargo run -p disco-bench --release --bin harness -- all --quick
//! cargo run -p disco-bench --release --bin harness -- e1 --json
//! ```
//!
//! Whenever E9 (evaluator throughput) runs, its report is also written to
//! `BENCH_e9.json` in the current directory so the perf trajectory of the
//! mediator combine step is tracked from PR to PR; E10 (federation
//! overlap, streamed vs blocking resolution) is likewise recorded to
//! `BENCH_e10.json`, E10h (heterogeneous federation, adaptive vs pinned
//! scheduling) to `BENCH_e10h.json`, E11 (multi-query serving layer) to
//! `BENCH_e11.json`, and E12 (memory-budgeted spilling) to
//! `BENCH_e12.json`.

use disco_bench::experiments::{self, Scale};
use disco_bench::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let selection: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let scale = if quick { Scale::quick() } else { Scale::full() };

    let wanted = |id: &str| -> bool {
        selection.is_empty()
            || selection
                .iter()
                .any(|s| s == "all" || s.eq_ignore_ascii_case(id))
    };

    let mut reports: Vec<Report> = Vec::new();
    if wanted("e1") {
        reports.push(experiments::e1_availability(scale));
    }
    if wanted("e2") {
        reports.push(experiments::e2_partial_eval(scale));
    }
    if wanted("e3") {
        reports.push(experiments::e3_pushdown(scale));
    }
    if wanted("e4") {
        reports.push(experiments::e4_calibration(scale));
    }
    if wanted("e5") {
        reports.push(experiments::e5_scaling_dba(scale));
    }
    if wanted("e6") {
        reports.push(experiments::e6_optimizer_search(scale));
    }
    if wanted("e7") {
        reports.push(experiments::e7_pipeline(scale));
    }
    if wanted("e8") {
        reports.push(experiments::e8_semijoin_gap(scale));
    }
    if wanted("e9") {
        let report = experiments::e9_evaluator_throughput(scale);
        if let Err(err) = std::fs::write("BENCH_e9.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_e9.json: {err}");
        }
        reports.push(report);
    }
    if wanted("e10") {
        let report = experiments::e10_federation_overlap(scale);
        if let Err(err) = std::fs::write("BENCH_e10.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_e10.json: {err}");
        }
        reports.push(report);
    }
    if wanted("e10h") {
        let report = experiments::e10_heterogeneous_adaptive(scale);
        if let Err(err) = std::fs::write("BENCH_e10h.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_e10h.json: {err}");
        }
        reports.push(report);
    }
    if wanted("e11") {
        let report = experiments::e11_serving(scale);
        if let Err(err) = std::fs::write("BENCH_e11.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_e11.json: {err}");
        }
        reports.push(report);
    }
    if wanted("e12") {
        let report = experiments::e12_spill(scale);
        if let Err(err) = std::fs::write("BENCH_e12.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_e12.json: {err}");
        }
        reports.push(report);
    }

    if reports.is_empty() {
        eprintln!("unknown experiment selection {selection:?}; use e1..e12, e10h, or all");
        std::process::exit(2);
    }
    for report in &reports {
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.to_text());
        }
    }
}
