//! Plain-text and JSON rendering of experiment results.
//!
//! Every experiment produces a [`Report`]: a title, the workload
//! parameters, column headers and rows.  The harness binary prints the
//! aligned text table (the "rows/series the paper reports"); `--json`
//! emits machine-readable records for plotting.

/// One experiment report: a table plus metadata.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier (e.g. `E1`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Description of the workload and parameters.
    pub workload: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (one string per column).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations (the "shape" conclusions).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, workload: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            workload: workload.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds one row (must have as many cells as there are columns).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count — that is a
    /// bug in the experiment code, not a runtime condition.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(row);
    }

    /// Adds a free-form observation line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("workload: {}\n", self.workload));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Renders the report as JSON (hand-rolled: the build environment has
    /// no serde, and the report shape is just strings and string arrays).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!("  \"workload\": {},\n", json_str(&self.workload)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            json_str_array(&self.columns)
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", json_str_array(row)));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"notes\": {}\n", json_str_array(&self.notes)));
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Formats a float with three decimals.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_serialises() {
        let mut r = Report::new("E0", "demo", "two rows", &["n", "value"]);
        r.push_row(["1", "10.000"]);
        r.push_row(["128", "3.5"]);
        r.push_note("value decreases with n");
        let text = r.to_text();
        assert!(text.contains("E0 — demo"));
        assert!(text.contains("note: value decreases"));
        assert!(text.lines().count() >= 6);
        let json = r.to_json();
        assert!(json.contains("\"columns\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut r = Report::new("E0", "demo", "w", &["a", "b"]);
        r.push_row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_pct(0.5), "50.0%");
    }
}
