//! # disco-bench
//!
//! Workload builders, experiment implementations and reporting used by the
//! `harness` binary and the Criterion benches.  Every experiment listed in
//! `DESIGN.md` §5 has a function here returning a [`report::Report`]; the
//! harness prints the tables recorded in `EXPERIMENTS.md`, the benches
//! measure the same code paths at a smaller scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workloads;
