//! The experiment implementations behind every table the harness prints
//! and every Criterion bench.  See `DESIGN.md` §5 for the mapping from
//! paper claims to experiments and `EXPERIMENTS.md` for recorded results.

use std::time::Instant;

use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
use disco_core::{Availability, CapabilitySet, NetworkProfile};
use disco_oql::parse_query;
use disco_runtime::Executor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{fmt_f64, fmt_pct, Report};
use crate::workloads::{
    capability_levels, person_federation, person_federation_with_profile, water_federation,
};

/// Parameters shared by the sweep experiments; `quick()` keeps Criterion
/// iterations cheap, `full()` is what the harness runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of trials per configuration.
    pub trials: usize,
    /// Rows per source.
    pub rows: usize,
    /// Largest federation size.
    pub max_sources: usize,
}

impl Scale {
    /// Small scale for Criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            trials: 5,
            rows: 50,
            max_sources: 16,
        }
    }

    /// Full scale for the harness tables.
    #[must_use]
    pub fn full() -> Self {
        Scale {
            trials: 40,
            rows: 200,
            max_sources: 256,
        }
    }
}

const PERSON_QUERY: &str = "select x.name from x in person where x.salary > 250";

// ---------------------------------------------------------------------
// E1 — availability of answers vs. federation size
// ---------------------------------------------------------------------

/// E1: "the availability of answers in the system declines as the number
/// of databases rises" — and DISCO's partial answers keep the available
/// fraction instead of failing.
#[must_use]
pub fn e1_availability(scale: Scale) -> Report {
    let mut report = Report::new(
        "E1",
        "answer availability vs. number of data sources",
        &format!(
            "person sources of {} rows each, per-source availability p, {} trials; \
             baselines: all-or-nothing vs DISCO partial answers",
            scale.rows, scale.trials
        ),
        &[
            "sources",
            "p",
            "P(all up) measured",
            "P(all up) p^n",
            "all-or-nothing data",
            "disco partial data",
            "resubmittable",
        ],
    );
    let sizes: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|n| *n <= scale.max_sources)
        .collect();
    for &p in &[0.99f64, 0.9] {
        for &n in &sizes {
            let federation = person_federation(n, scale.rows, CapabilitySet::full());
            let full = federation.mediator.query(PERSON_QUERY).expect("query runs");
            let full_rows = full.data().len().max(1) as f64;
            let mut rng = StdRng::seed_from_u64((n as u64) << 8 | (p * 100.0) as u64);
            let mut all_up_trials = 0usize;
            let mut disco_fraction_sum = 0.0;
            let mut strict_fraction_sum = 0.0;
            for _ in 0..scale.trials {
                let mut any_down = false;
                for link in &federation.links {
                    let up: bool = rng.gen_bool(p);
                    link.set_availability(if up {
                        Availability::Available
                    } else {
                        any_down = true;
                        Availability::Unavailable
                    });
                }
                let answer = federation.mediator.query(PERSON_QUERY).expect("query runs");
                let fraction = answer.data().len() as f64 / full_rows;
                disco_fraction_sum += fraction;
                if any_down {
                    // All-or-nothing semantics: no answer at all.
                    strict_fraction_sum += 0.0;
                } else {
                    all_up_trials += 1;
                    strict_fraction_sum += 1.0;
                }
            }
            for link in &federation.links {
                link.set_availability(Availability::Available);
            }
            let trials = scale.trials as f64;
            report.push_row([
                n.to_string(),
                format!("{p:.2}"),
                fmt_pct(all_up_trials as f64 / trials),
                fmt_pct(p.powi(i32::try_from(n).unwrap_or(i32::MAX))),
                fmt_pct(strict_fraction_sum / trials),
                fmt_pct(disco_fraction_sum / trials),
                "yes".to_owned(),
            ]);
        }
    }
    report.push_note(
        "all-or-nothing availability decays geometrically with the number of sources; \
         DISCO's partial answers keep roughly the per-source availability fraction of the data \
         and remain resubmittable",
    );
    report
}

// ---------------------------------------------------------------------
// E2 — partial evaluation detail
// ---------------------------------------------------------------------

/// E2: the answer is a query — residual size, data fraction and
/// convergence of resubmission as k of N sources are unavailable.
#[must_use]
pub fn e2_partial_eval(scale: Scale) -> Report {
    let n = 8usize.min(scale.max_sources.max(2));
    let federation = person_federation(n, scale.rows, CapabilitySet::full());
    let full = federation.mediator.query(PERSON_QUERY).expect("query runs");
    let full_rows = full.data().len().max(1) as f64;
    let mut report = Report::new(
        "E2",
        "partial answers as k of N sources are unavailable",
        &format!(
            "{n} person sources of {} rows; k sources taken down, then recovered",
            scale.rows
        ),
        &[
            "unavailable k",
            "data fraction",
            "residual extents",
            "residual chars",
            "resubmissions to converge",
            "recovered == full",
        ],
    );
    for k in 0..=n {
        for (i, link) in federation.links.iter().enumerate() {
            link.set_availability(if i < k {
                Availability::Unavailable
            } else {
                Availability::Available
            });
        }
        let answer = federation.mediator.query(PERSON_QUERY).expect("query runs");
        let fraction = answer.data().len() as f64 / full_rows;
        let (residual_extents, residual_chars) = match answer.residual() {
            Some(residual) => (
                residual.collections().len(),
                answer.residual_oql().unwrap().len(),
            ),
            None => (0, 0),
        };
        // Recover everything and resubmit until complete.
        for link in &federation.links {
            link.set_availability(Availability::Available);
        }
        let mut steps = 0usize;
        let mut current = answer.clone();
        while !current.is_complete() && steps < 5 {
            current = federation
                .mediator
                .resubmit(&current)
                .expect("resubmission runs");
            steps += 1;
        }
        let converged = current.data() == full.data();
        report.push_row([
            k.to_string(),
            fmt_pct(fraction),
            residual_extents.to_string(),
            residual_chars.to_string(),
            steps.to_string(),
            converged.to_string(),
        ]);
    }
    report.push_note(
        "the data fraction falls linearly in k, the residual query grows linearly in k, and a \
         single resubmission after recovery always converges to the full answer",
    );
    report
}

// ---------------------------------------------------------------------
// E3 — capability-based pushdown
// ---------------------------------------------------------------------

/// E3: pushing selections/projections to capable wrappers cuts the data
/// transferred from sources; incapable wrappers ship whole collections.
#[must_use]
pub fn e3_pushdown(scale: Scale) -> Report {
    let thresholds = [0i64, 250, 450, 490];
    let mut report = Report::new(
        "E3",
        "work pushed to wrappers vs. wrapper capability",
        &format!(
            "2 person sources × {} rows; query selects names above a salary threshold; \
             wrapper capability swept from get-only to full",
            scale.rows
        ),
        &[
            "capability",
            "threshold",
            "selectivity",
            "rows transferred",
            "values transferred",
            "vs get-only",
            "answer rows",
        ],
    );
    let interface_width = 3usize; // id, name, salary
    for (label, caps) in capability_levels() {
        for &threshold in &thresholds {
            let federation = person_federation(2, scale.rows, caps.clone());
            let query = format!("select x.name from x in person where x.salary > {threshold}");
            // Inspect the plan before executing so the (cold) cost model the
            // execution will use is also the one whose pushdown decisions we
            // report.
            let plan = federation.mediator.explain(&query).expect("plan");
            let answer = federation.mediator.query(&query).expect("query runs");
            let transferred = answer.stats().rows_transferred;
            // Values (cells) transferred: rows × width of the tuples the
            // wrapper shipped.  The width depends on whether the projection
            // was pushed, which the chosen plan records.
            let mut values = 0usize;
            for exec in plan.physical.collect_execs() {
                if let disco_algebra::PhysicalExpr::Exec { logical, .. } = exec {
                    let width = pushed_width(logical).unwrap_or(interface_width);
                    values += (transferred / 2) * width;
                }
            }
            let baseline_rows = 2 * scale.rows;
            let baseline_values = baseline_rows * interface_width;
            let selectivity = answer.data().len() as f64 / (2 * scale.rows) as f64;
            report.push_row([
                label.to_owned(),
                threshold.to_string(),
                fmt_pct(selectivity),
                transferred.to_string(),
                values.to_string(),
                fmt_pct(values as f64 / baseline_values as f64),
                answer.data().len().to_string(),
            ]);
        }
    }
    report.push_note(
        "get-only wrappers always transfer every row and every attribute; project-capable \
         wrappers cut the attributes shipped; select-capable wrappers cut the rows shipped, so \
         the benefit grows as the predicate becomes more selective",
    );
    report
}

/// The tuple width produced by a pushed expression (None = whole tuples).
fn pushed_width(expr: &LogicalExpr) -> Option<usize> {
    match expr {
        LogicalExpr::Project { columns, .. } => Some(columns.len()),
        LogicalExpr::Filter { input, .. } => pushed_width(input),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// E4 — self-calibrating cost model
// ---------------------------------------------------------------------

/// E4: recorded `exec` calls (exact and close matches, smoothed) give
/// useful cost estimates; unseen calls fall back to the paper's defaults.
#[must_use]
pub fn e4_calibration(scale: Scale) -> Report {
    let profile = NetworkProfile {
        base_latency_us: 5_000,
        per_row_us: 20,
        jitter: 0.1,
        availability: Availability::Available,
        real_sleep: false,
        chunk_rows: 0,
    };
    let federation = person_federation_with_profile(1, scale.rows, CapabilitySet::full(), profile);
    let mediator = &federation.mediator;
    let query = "select x.name from x in person0 where x.salary > 250";
    let mut report = Report::new(
        "E4",
        "cost-model calibration from recorded exec calls",
        &format!(
            "1 source × {} rows behind a 5 ms link; the same query repeated, then variants",
            scale.rows
        ),
        &[
            "observations",
            "estimate kind",
            "estimated ms",
            "measured ms",
            "abs error %",
        ],
    );
    // Identify the exec call the optimizer will cost.
    let plan = mediator.explain(query).expect("plan");
    let execs = plan.physical.collect_execs();
    let (repository, shipped) = match execs.first() {
        Some(disco_algebra::PhysicalExpr::Exec {
            repository,
            logical,
            ..
        }) => (repository.clone(), logical.clone()),
        _ => unreachable!("plan has one exec"),
    };
    let mut measured_ms = 0.0;
    for round in 0..scale.trials.max(6) {
        let estimate = mediator.calibration().estimate(&repository, &shipped);
        let answer = mediator.query(query).expect("query runs");
        measured_ms = answer
            .stats()
            .source_calls
            .first()
            .map(|c| c.latency.as_secs_f64() * 1000.0)
            .unwrap_or(0.0);
        let error = if measured_ms > 0.0 {
            (estimate.time_ms - measured_ms).abs() / measured_ms
        } else {
            0.0
        };
        if round <= 4 || round == scale.trials.max(6) - 1 {
            report.push_row([
                round.to_string(),
                format!("{:?}", estimate.source),
                fmt_f64(estimate.time_ms),
                fmt_f64(measured_ms),
                fmt_pct(error),
            ]);
        }
    }
    // A close match: the same call shape with a different constant.  The
    // variant plan's pushed alternative ships an expression whose
    // fingerprint equals the recorded one, so the store answers from the
    // close-match table.
    let variant = "select x.name from x in person0 where x.salary > 499";
    let variant_plan = mediator.explain(variant).expect("plan");
    let variant_exec = variant_plan
        .alternatives
        .iter()
        .flat_map(|alt| alt.logical.collect_submits())
        .find_map(|submit| match submit {
            disco_algebra::LogicalExpr::Submit { expr, .. }
                if expr.fingerprint() == shipped.fingerprint() && **expr != shipped =>
            {
                Some((**expr).clone())
            }
            _ => None,
        });
    if let Some(expr) = variant_exec {
        let estimate = mediator.calibration().estimate(&repository, &expr);
        let error = relative_error(estimate.time_ms, measured_ms);
        report.push_row([
            "close-match".to_owned(),
            format!("{:?}", estimate.source),
            fmt_f64(estimate.time_ms),
            fmt_f64(measured_ms),
            fmt_pct(error),
        ]);
    }
    // A structurally new call: the paper's defaults (time 0, data 1).
    let unseen = disco_algebra::LogicalExpr::get("person0").project(["id"]);
    let estimate = mediator.calibration().estimate("r0", &unseen);
    report.push_row([
        "unseen".to_owned(),
        format!("{:?}", estimate.source),
        fmt_f64(estimate.time_ms),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    report.push_note(
        "the first execution uses the default (time 0, data 1); after one observation the exact \
         match tracks the measured latency within the jitter; structurally similar calls with \
         different constants reuse the close match; unseen shapes fall back to the defaults",
    );
    report
}

/// Relative error of an estimate against a measurement (0 when nothing was
/// measured).
fn relative_error(estimate_ms: f64, measured_ms: f64) -> f64 {
    if measured_ms > 0.0 {
        (estimate_ms - measured_ms).abs() / measured_ms
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------
// E5 — DBA effort as the federation grows
// ---------------------------------------------------------------------

/// E5: adding a source of an existing type is one extent declaration; the
/// query text is invariant and the per-source registration cost stays flat.
#[must_use]
pub fn e5_scaling_dba(scale: Scale) -> Report {
    let sizes: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|n| *n <= scale.max_sources)
        .collect();
    let query = "count(select m.day from m in measurement where m.ph > 7.5)";
    let mut report = Report::new(
        "E5",
        "DBA effort and catalog growth vs. number of sources",
        "water-quality stations (identical type) registered one by one; fixed monitoring query",
        &[
            "sources",
            "registration ms (total)",
            "catalog extents",
            "interfaces",
            "exec calls in plan",
            "query text changed",
        ],
    );
    for &n in &sizes {
        let start = Instant::now();
        let federation = water_federation(n, 20);
        let registration_ms = start.elapsed().as_secs_f64() * 1000.0;
        let stats = federation.mediator.catalog().stats();
        let plan = federation.mediator.explain(query).expect("plan");
        report.push_row([
            n.to_string(),
            fmt_f64(registration_ms),
            stats.extents.to_string(),
            stats.interfaces.to_string(),
            plan.physical.collect_execs().len().to_string(),
            "no".to_owned(),
        ]);
    }
    report.push_note(
        "registration cost grows linearly (constant per source), the interface count stays at 1, \
         and the same query text fans out to exactly one exec call per registered station",
    );
    report
}

// ---------------------------------------------------------------------
// E6 — optimizer search
// ---------------------------------------------------------------------

/// E6: the rule-based search enumerates alternative plans, costs them and
/// picks the cheapest; optimization time stays in the sub-millisecond to
/// millisecond range for realistic federations.
#[must_use]
pub fn e6_optimizer_search(scale: Scale) -> Report {
    let mut report = Report::new(
        "E6",
        "optimizer search space and plan choice",
        &format!(
            "person federation of {} rows per source; queries of increasing shape complexity",
            scale.rows
        ),
        &[
            "query",
            "sources",
            "alternatives",
            "optimize ms",
            "chosen strategy",
            "chosen cost",
            "canonical cost",
        ],
    );
    let cases: Vec<(&str, usize, String)> =
        vec![
        ("point select", 2, "select x.name from x in person where x.salary > 400".to_owned()),
        ("multi-source union", 8, "select x.name from x in person where x.salary > 400".to_owned()),
        (
            "two-source join",
            2,
            "select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id"
                .to_owned(),
        ),
        (
            "aggregate",
            8,
            "sum(select x.salary from x in person where x.salary > 100)".to_owned(),
        ),
        (
            "view + distinct",
            8,
            "select distinct x.name from x in person where x.salary > 250".to_owned(),
        ),
    ];
    for (label, sources, query) in cases {
        let federation = person_federation(sources, scale.rows, CapabilitySet::full());
        let start = Instant::now();
        let plan = federation.mediator.explain(&query).expect("plan");
        let optimize_ms = start.elapsed().as_secs_f64() * 1000.0;
        let canonical = plan
            .alternatives
            .iter()
            .find(|a| a.strategy == "mediator-only")
            .map_or(plan.cost.time_ms, |a| a.cost.time_ms);
        report.push_row([
            label.to_owned(),
            sources.to_string(),
            plan.alternatives.len().to_string(),
            fmt_f64(optimize_ms),
            plan.chosen_strategy().to_owned(),
            fmt_f64(plan.cost.time_ms),
            fmt_f64(canonical),
        ]);
    }
    report.push_note(
        "the chosen plan never costs more than the canonical mediator-only plan; with the default \
         (uncalibrated) cost model the optimizer prefers maximal pushdown, as the paper intends",
    );
    report
}

// ---------------------------------------------------------------------
// E7 — the Prototype 0 pipeline (Fig. 2)
// ---------------------------------------------------------------------

/// E7: per-stage latency (parse, optimize, execute) and end-to-end
/// throughput of the Fig. 2 pipeline over a mixed workload.
#[must_use]
pub fn e7_pipeline(scale: Scale) -> Report {
    let federation = person_federation(4, scale.rows, CapabilitySet::full());
    let queries = [
        (
            "point",
            "select x.name from x in person0 where x.salary > 400",
        ),
        (
            "union",
            "select x.name from x in person where x.salary > 400",
        ),
        (
            "join",
            "select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id",
        ),
        ("aggregate", "sum(select x.salary from x in person)"),
        ("distinct", "select distinct x.name from x in person"),
    ];
    let mut report = Report::new(
        "E7",
        "Prototype 0 pipeline: per-stage latency and throughput",
        &format!(
            "4 person sources × {} rows; {} repetitions per query",
            scale.rows, scale.trials
        ),
        &[
            "query",
            "parse µs",
            "optimize µs",
            "execute µs",
            "total µs",
            "queries/s",
        ],
    );
    for (label, query) in queries {
        let mut parse_us = 0.0;
        let mut optimize_us = 0.0;
        let mut execute_us = 0.0;
        for _ in 0..scale.trials.max(3) {
            let t0 = Instant::now();
            let _ast = parse_query(query).expect("parse");
            parse_us += t0.elapsed().as_secs_f64() * 1e6;
            let t1 = Instant::now();
            let plan = federation.mediator.explain(query).expect("plan");
            optimize_us += t1.elapsed().as_secs_f64() * 1e6;
            let t2 = Instant::now();
            let executor = Executor::new(federation.mediator.registry().clone());
            let _answer = executor
                .execute(&plan.physical, federation.mediator.catalog())
                .expect("execute");
            execute_us += t2.elapsed().as_secs_f64() * 1e6;
        }
        let n = scale.trials.max(3) as f64;
        let total = (parse_us + optimize_us + execute_us) / n;
        report.push_row([
            label.to_owned(),
            fmt_f64(parse_us / n),
            fmt_f64(optimize_us / n),
            fmt_f64(execute_us / n),
            fmt_f64(total),
            fmt_f64(1e6 / total.max(1.0)),
        ]);
    }
    report.push_note(
        "execution dominates the pipeline; parsing and optimization stay in the tens-to-hundreds \
         of microseconds, so the mediator layers add little overhead over the wrapper calls",
    );
    report
}

// ---------------------------------------------------------------------
// E8 — the semijoin gap (submit has RPC semantics)
// ---------------------------------------------------------------------

/// E8: because `submit` cannot ship data between sources, cross-repository
/// joins transfer both inputs to the mediator; a same-repository join is
/// pushed and transfers only results.  The hypothetical semijoin lower
/// bound quantifies what the restriction costs.
#[must_use]
pub fn e8_semijoin_gap(scale: Scale) -> Report {
    use disco_catalog::{
        Attribute, Catalog, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef,
    };
    use disco_source::{generator, RelationalStore, SimulatedLink};
    use disco_wrapper::{RelationalWrapper, WrapperRegistry};
    use std::sync::Arc;

    let departments = 8usize;
    // Managers exist for only two of the eight departments, so the join is
    // selective — the situation where a semijoin strategy would pay off.
    let managed_departments = 2usize;
    let mut report = Report::new(
        "E8",
        "join placement and the semijoin gap",
        &format!(
            "employee relation of {} rows over {departments} departments; managers exist for \
             {managed_departments} departments; equi-join on dept, placed at the source vs at \
             the mediator",
            scale.rows
        ),
        &["strategy", "rows transferred", "join rows", "note"],
    );

    // One repository (r0) holding BOTH relations — the §3.2 example where
    // the join can be pushed — and a second repository (r1) holding only the
    // manager relation, forcing a mediator join.
    let mut catalog = Catalog::new();
    catalog
        .define_interface(
            InterfaceDef::new("Employee")
                .with_extent_name("employee")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .expect("fresh catalog");
    catalog
        .define_interface(
            InterfaceDef::new("Manager")
                .with_extent_name("manager")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int)),
        )
        .expect("fresh catalog");
    catalog
        .add_repository(Repository::new("r0"))
        .expect("fresh");
    catalog
        .add_repository(Repository::new("r1"))
        .expect("fresh");
    catalog
        .add_wrapper(WrapperDef::new("w0", "relational"))
        .expect("fresh");
    catalog
        .add_wrapper(WrapperDef::new("w1", "relational"))
        .expect("fresh");

    let registry = WrapperRegistry::new();
    let employee_table = generator::employee_table("employee0", scale.rows, departments, 11);
    let matching_employees = employee_table
        .rows()
        .iter()
        .filter(|row| {
            row.field("dept")
                .ok()
                .and_then(|v| v.as_int().ok())
                .is_some_and(|d| (d as usize) < managed_departments)
        })
        .count();
    let store0 = Arc::new(RelationalStore::new());
    store0.put_table(employee_table);
    store0.put_table(generator::manager_table(
        "manager0",
        managed_departments,
        11,
    ));
    registry.register(Arc::new(RelationalWrapper::new(
        "w0",
        store0,
        Arc::new(SimulatedLink::new("r0", NetworkProfile::fast(), 1)),
    )));
    let store1 = Arc::new(RelationalStore::new());
    store1.put_table(generator::manager_table(
        "manager1",
        managed_departments,
        11,
    ));
    registry.register(Arc::new(RelationalWrapper::new(
        "w1",
        store1,
        Arc::new(SimulatedLink::new("r1", NetworkProfile::fast(), 2)),
    )));
    catalog
        .add_extent(MetaExtent::new("employee0", "Employee", "w0", "r0"))
        .expect("fresh");
    catalog
        .add_extent(MetaExtent::new("manager0", "Manager", "w0", "r0"))
        .expect("fresh");
    catalog
        .add_extent(MetaExtent::new("manager1", "Manager", "w1", "r1"))
        .expect("fresh");
    let executor = Executor::new(registry);

    // (a) Same repository: the join is pushed inside the submit.
    let pushed = LogicalExpr::SourceJoin {
        left: Box::new(LogicalExpr::get("employee0")),
        right: Box::new(LogicalExpr::get("manager0")),
        on: vec![("dept".into(), "dept".into())],
    }
    .submit("r0", "w0", "employee0");
    let pushed_answer = executor
        .execute(&lower(&pushed).expect("lower"), &catalog)
        .expect("pushed join runs");

    // (b) Cross repository: both inputs ship to the mediator.
    let cross = LogicalExpr::Join {
        left: Box::new(
            LogicalExpr::get("employee0")
                .submit("r0", "w0", "employee0")
                .bind("x"),
        ),
        right: Box::new(
            LogicalExpr::get("manager1")
                .submit("r1", "w1", "manager1")
                .bind("y"),
        ),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "dept"),
            ScalarExpr::var_field("y", "dept"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("employee".into(), ScalarExpr::var_field("x", "name")),
        ("manager".into(), ScalarExpr::var_field("y", "name")),
    ]));
    let cross_answer = executor
        .execute(&lower(&cross).expect("lower"), &catalog)
        .expect("cross join runs");

    // (c) The hypothetical semijoin lower bound for the cross join: ship the
    // distinct join keys of the manager side one way, then only the matching
    // employee rows back.
    let semijoin_bound = managed_departments + matching_employees;

    report.push_row([
        "same repository, join pushed".to_owned(),
        pushed_answer.stats().rows_transferred.to_string(),
        pushed_answer.data().len().to_string(),
        "only join results cross the network".to_owned(),
    ]);
    report.push_row([
        "cross repository, mediator join".to_owned(),
        cross_answer.stats().rows_transferred.to_string(),
        cross_answer.data().len().to_string(),
        "both inputs shipped to the mediator".to_owned(),
    ]);
    report.push_row([
        "hypothetical semijoin (not expressible)".to_owned(),
        semijoin_bound.to_string(),
        cross_answer.data().len().to_string(),
        "would require source-to-source data flow".to_owned(),
    ]);
    report.push_note(
        "the submit operator's RPC semantics make the semijoin strategy inexpressible (§3.2); \
         the gap between rows shipped by the mediator join and the semijoin bound is the price",
    );
    report
}

// ---------------------------------------------------------------------
// E9 — mediator evaluator throughput (the combine step)
// ---------------------------------------------------------------------

/// E9: throughput of the mediator-side evaluator over in-memory bags — no
/// wrappers, no simulated network.  This isolates the combine step the
/// zero-clone value plane and the streaming cursor engine optimise; the
/// numbers are the before/after yardstick recorded in `BENCH_e9.json` and
/// `ROADMAP.md`.  The workloads come from [`crate::workloads`] and are
/// shared with the criterion bench.
///
/// Besides wall-clock, every pipeline reports **rows materialized** — the
/// rows buffered by pipeline breakers (hash-join build side, distinct
/// seen-set) during one evaluation.  Under the seed bag-at-a-time
/// evaluator this number was the sum of every intermediate bag; under the
/// streaming engine it is bounded by the breakers alone.
#[must_use]
pub fn e9_evaluator_throughput(scale: Scale) -> Report {
    use crate::workloads::{
        e9_deep_pipeline_plan, e9_distinct_plan, e9_filter_project_plan, e9_hash_join_plan,
        e9_person_bag,
    };
    use disco_runtime::{ColumnarMode, PipelineMetrics, ResolvedExecs};

    use disco_runtime::{evaluate_physical_with, PipelineOptions};

    let rows = if scale.trials >= 40 { 100_000 } else { 10_000 };
    let trials = scale.trials.clamp(3, 10);
    let mut report = Report::new(
        "E9",
        "mediator evaluator throughput (combine step)",
        &format!("{rows}-row in-memory person bags, best of {trials} trials per pipeline"),
        &[
            "pipeline",
            "mode",
            "threads",
            "rows in",
            "rows out",
            "rows mat",
            "rows kernel",
            "best ms",
            "Mrows/s",
        ],
    );

    let resolved = ResolvedExecs::default();
    let mut run_m =
        |name: &str, mode: ColumnarMode, threads: usize, rows_in: usize, plan: &LogicalExpr| {
            let physical = lower(plan).expect("plan lowers");
            let options = PipelineOptions {
                threads,
                columnar: mode,
                ..PipelineOptions::default()
            };
            let mut best = f64::INFINITY;
            let mut rows_out = 0usize;
            let mut rows_materialized = 0usize;
            let mut rows_kernel = 0usize;
            for _ in 0..trials {
                let metrics = PipelineMetrics::new();
                let started = Instant::now();
                let out = evaluate_physical_with(&physical, &resolved, &metrics, options)
                    .expect("evaluates");
                let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
                rows_out = out.len();
                rows_materialized = metrics.rows_materialized();
                rows_kernel = metrics.rows_kernel();
                if elapsed_ms < best {
                    best = elapsed_ms;
                }
            }
            let mrows_per_s = rows_in as f64 / (best / 1000.0) / 1.0e6;
            let mode_label = match mode {
                ColumnarMode::Off => "row",
                _ => "col",
            };
            report.push_row([
                name.to_owned(),
                mode_label.to_owned(),
                threads.to_string(),
                rows_in.to_string(),
                rows_out.to_string(),
                rows_materialized.to_string(),
                rows_kernel.to_string(),
                fmt_f64(best),
                fmt_f64(mrows_per_s),
            ]);
        };

    // Each vectorized pipeline gets a row-path (columnar off) twin — the
    // before/after column this engine is judged on.
    run_m(
        "filter_project",
        ColumnarMode::On,
        1,
        rows,
        &e9_filter_project_plan(rows),
    );
    run_m(
        "filter_project",
        ColumnarMode::Off,
        1,
        rows,
        &e9_filter_project_plan(rows),
    );
    run_m(
        "hash_join",
        ColumnarMode::On,
        1,
        rows + rows / 10,
        &e9_hash_join_plan(rows),
    );
    run_m(
        "hash_join",
        ColumnarMode::Off,
        1,
        rows + rows / 10,
        &e9_hash_join_plan(rows),
    );
    run_m(
        "distinct",
        ColumnarMode::On,
        1,
        rows,
        &e9_distinct_plan(rows),
    );
    run_m(
        "distinct",
        ColumnarMode::Off,
        1,
        rows,
        &e9_distinct_plan(rows),
    );
    run_m(
        "deep_pipeline",
        ColumnarMode::On,
        1,
        rows + rows / 10,
        &e9_deep_pipeline_plan(rows),
    );
    run_m(
        "deep_pipeline",
        ColumnarMode::Off,
        1,
        rows + rows / 10,
        &e9_deep_pipeline_plan(rows),
    );

    let union_bags: Vec<LogicalExpr> = (0..8)
        .map(|_| LogicalExpr::Data(e9_person_bag(rows / 8, 1024)))
        .collect();
    let union_distinct = LogicalExpr::Distinct(Box::new(LogicalExpr::Union(union_bags)));
    run_m(
        "union8_distinct",
        ColumnarMode::On,
        1,
        rows,
        &union_distinct,
    );

    // Thread-scaling rows (the morsel-driven parallel engine) for the two
    // heaviest pipelines; `rows mat` must be identical at every thread
    // count — per-worker metrics merge exactly.
    for threads in [2usize, 4] {
        run_m(
            "hash_join",
            ColumnarMode::On,
            threads,
            rows + rows / 10,
            &e9_hash_join_plan(rows),
        );
        run_m(
            "deep_pipeline",
            ColumnarMode::On,
            threads,
            rows + rows / 10,
            &e9_deep_pipeline_plan(rows),
        );
    }

    report.push_note(
        "evaluator only: bags are in memory, so this is the mediator combine cost that \
         dominates once wrappers answer in parallel",
    );
    report.push_note(
        "rows mat = rows buffered by pipeline breakers (hash-join build side, distinct \
         seen-set) per evaluation; streaming operators buffer nothing",
    );
    report.push_note(
        "threads > 1 rows run the morsel-driven parallel engine (DISCO_THREADS / \
         PipelineOptions::threads); threads = 1 is the serial cursor path",
    );
    report.push_note(
        "mode col = columnar batches + vectorized kernels (ColumnarMode::On); mode row = \
         per-row cursor fallback (ColumnarMode::Off); rows kernel = rows whose scalar \
         work ran vectorized",
    );
    report
}

// ---------------------------------------------------------------------
// E10 — federation overlap under streamed resolution
// ---------------------------------------------------------------------

/// E10: streamed source resolution under skewed per-source latencies.
///
/// A federation of person sources answers over chunked, *really sleeping*
/// links; one source is ~10× slower than the rest.  The blocking path
/// waits for the slowest wrapper before the combine step starts, so its
/// wall-clock is ≈ slowest + combine; the streamed path feeds chunks into
/// the pipeline as they arrive, so wall-clock collapses to
/// ≈ max(slowest source, combine) and `time_to_first_row` — when the fast
/// sources' first rows reach the sink — is far below the total latency.
#[must_use]
pub fn e10_federation_overlap(scale: Scale) -> Report {
    use disco_core::ResolutionMode;

    let sources = 4usize;
    let rows = scale.rows.max(40);
    let chunk = (rows / 8).max(1);
    // Fast sources: base 0.5 ms + 25 µs/row, streamed in ~8 chunks.
    let fast_ms = 0.5 + rows as f64 * 0.025;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let slow_extra_ms = (fast_ms * 9.0 / 8.0).ceil().max(1.0) as u64;
    let fast = NetworkProfile {
        base_latency_us: 500,
        per_row_us: 25,
        jitter: 0.0,
        availability: Availability::Available,
        real_sleep: true,
        chunk_rows: chunk,
    };
    let trials = scale.trials.clamp(3, 7);
    let mut report = Report::new(
        "E10",
        "federation overlap: streamed vs blocking resolution",
        &format!(
            "{sources} person sources x {rows} rows, chunked ({chunk} rows/chunk), real \
             sleeps; source {} degraded ~10x ({slow_extra_ms} ms extra per chunk); median \
             of {trials} trials",
            sources - 1
        ),
        &[
            "mode",
            "threads",
            "wall ms",
            "t_first ms",
            "slowest src ms",
            "wall/slowest",
        ],
    );

    let federation =
        person_federation_with_profile(sources, rows, CapabilitySet::full(), fast.clone());
    federation.links[sources - 1].set_profile(fast.with_availability(Availability::Degraded {
        chunk_extra_ms: slow_extra_ms,
    }));
    // Ship bare `get`s so the union/distinct combine work stays at the
    // mediator — the step streamed resolution overlaps with source latency.
    let branches: Vec<LogicalExpr> = (0..sources)
        .map(|i| {
            LogicalExpr::get(format!("person{i}"))
                .submit(
                    format!("r{i}"),
                    format!("w_person{i}"),
                    format!("person{i}"),
                )
                .bind("x")
                .map_project(ScalarExpr::var_field("x", "name"))
        })
        .collect();
    let plan = lower(&LogicalExpr::Distinct(Box::new(LogicalExpr::Union(
        branches,
    ))))
    .expect("plan lowers");

    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    for mode in [ResolutionMode::Blocking, ResolutionMode::Streamed] {
        for threads in [1usize, 4] {
            let executor = Executor::new(federation.mediator.registry().clone())
                .with_resolution(mode)
                .with_threads(threads)
                .with_deadline(Some(std::time::Duration::from_secs(30)));
            let mut walls = Vec::with_capacity(trials);
            let mut firsts = Vec::with_capacity(trials);
            let mut slowest_ms = 0.0f64;
            for _ in 0..trials {
                let started = Instant::now();
                let answer = executor
                    .execute(&plan, federation.mediator.catalog())
                    .expect("executes");
                walls.push(started.elapsed().as_secs_f64() * 1000.0);
                assert!(answer.is_complete(), "no source is unavailable here");
                if let Some(t) = answer.time_to_first_row() {
                    firsts.push(t.as_secs_f64() * 1000.0);
                }
                slowest_ms = answer
                    .stats()
                    .source_calls
                    .iter()
                    .map(|c| c.latency.as_secs_f64() * 1000.0)
                    .fold(slowest_ms, f64::max);
            }
            let wall = median(&mut walls);
            let t_first = if firsts.is_empty() {
                f64::NAN
            } else {
                median(&mut firsts)
            };
            report.push_row([
                format!("{mode:?}").to_lowercase(),
                threads.to_string(),
                fmt_f64(wall),
                fmt_f64(t_first),
                fmt_f64(slowest_ms),
                fmt_f64(wall / slowest_ms),
            ]);
        }
    }
    report.push_note(
        "blocking: the combine step starts only after the slowest wrapper answers \
         (wall ~= slowest + combine); streamed: chunks feed the pipeline as they \
         arrive (wall ~= max(slowest, combine), t_first << wall)",
    );
    report.push_note(
        "t_first = time_to_first_row from ExecutionStats: when the first answer row \
         reached the final sink",
    );
    report
}

// ---------------------------------------------------------------------
// E10h — heterogeneous federation: adaptive vs pinned scheduling
// ---------------------------------------------------------------------

/// E10h: heterogeneity-aware adaptive scheduling over the E10 federation.
///
/// The same skewed federation as E10 — one source answers ~10× slower
/// than the rest — executed through a join the slow source feeds, with
/// the pinned scheduler (`AdaptiveMode::Off`) and the adaptive engine
/// (`AdaptiveMode::On`): rate-proportional morsel claims and the
/// first-answer build-side choice.  Every answer is asserted
/// multiset-identical to the pinned serial baseline; the table tracks
/// how wall-clock and first-row latency move when adaptivity engages.
///
/// # Panics
///
/// Panics if an adaptive answer diverges from the pinned baseline.
#[must_use]
pub fn e10_heterogeneous_adaptive(scale: Scale) -> Report {
    use disco_core::ResolutionMode;
    use disco_runtime::AdaptiveMode;

    let sources = 4usize;
    let rows = scale.rows.max(40);
    let chunk = (rows / 8).max(1);
    let fast_ms = 0.5 + rows as f64 * 0.025;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let slow_extra_ms = (fast_ms * 9.0 / 8.0).ceil().max(1.0) as u64;
    let fast = NetworkProfile {
        base_latency_us: 500,
        per_row_us: 25,
        jitter: 0.0,
        availability: Availability::Available,
        real_sleep: true,
        chunk_rows: chunk,
    };
    let trials = scale.trials.clamp(3, 7);
    let mut report = Report::new(
        "E10h",
        "heterogeneous federation: adaptive vs pinned scheduling",
        &format!(
            "{sources} person sources x {rows} rows, chunked ({chunk} rows/chunk), real \
             sleeps; source {} degraded ~10x ({slow_extra_ms} ms extra per chunk); join \
             fed by the degraded source; median of {trials} trials",
            sources - 1
        ),
        &["adaptive", "threads", "wall ms", "t_first ms", "rows"],
    );

    let federation =
        person_federation_with_profile(sources, rows, CapabilitySet::full(), fast.clone());
    federation.links[sources - 1].set_profile(fast.with_availability(Availability::Degraded {
        chunk_extra_ms: slow_extra_ms,
    }));
    // A join the degraded source feeds: the adaptive engine may build the
    // first-answered fast side instead of waiting on the slow one, and
    // morsel claims shrink for workers stuck behind slow chunks.
    let slow = sources - 1;
    let plan = lower(
        &LogicalExpr::Join {
            left: Box::new(
                LogicalExpr::get(format!("person{slow}"))
                    .submit(
                        format!("r{slow}"),
                        format!("w_person{slow}"),
                        format!("person{slow}"),
                    )
                    .bind("x"),
            ),
            right: Box::new(
                LogicalExpr::get("person0")
                    .submit("r0", "w_person0", "person0")
                    .bind("y"),
            ),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            ("peer".into(), ScalarExpr::var_field("y", "name")),
        ])),
    )
    .expect("plan lowers");

    let run = |adaptive: AdaptiveMode, threads: usize| {
        Executor::new(federation.mediator.registry().clone())
            .with_resolution(ResolutionMode::Streamed)
            .with_threads(threads)
            .with_adaptive(adaptive)
            .with_deadline(Some(std::time::Duration::from_secs(30)))
            .execute(&plan, federation.mediator.catalog())
            .expect("executes")
    };
    let baseline = run(AdaptiveMode::Off, 1);
    assert!(baseline.is_complete(), "no source is unavailable here");

    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    for adaptive in [AdaptiveMode::Off, AdaptiveMode::On] {
        for threads in [1usize, 4] {
            let mut walls = Vec::with_capacity(trials);
            let mut firsts = Vec::with_capacity(trials);
            let mut answered = 0usize;
            for _ in 0..trials {
                let started = Instant::now();
                let answer = run(adaptive, threads);
                walls.push(started.elapsed().as_secs_f64() * 1000.0);
                assert_eq!(
                    answer.data(),
                    baseline.data(),
                    "adaptive scheduling changed the answer ({adaptive:?}, {threads} threads)"
                );
                if let Some(t) = answer.time_to_first_row() {
                    firsts.push(t.as_secs_f64() * 1000.0);
                }
                answered = answer.data().len();
            }
            let wall = median(&mut walls);
            let t_first = if firsts.is_empty() {
                f64::NAN
            } else {
                median(&mut firsts)
            };
            report.push_row([
                format!("{adaptive:?}").to_lowercase(),
                threads.to_string(),
                fmt_f64(wall),
                fmt_f64(t_first),
                answered.to_string(),
            ]);
        }
    }
    report.push_note(
        "every answer is asserted multiset-identical to the pinned serial baseline; \
         only scheduling (morsel claim sizes, hash-join build side) may differ",
    );
    report.push_note(
        "rows_materialized is not compared: the adaptive build-side choice may buffer \
         the first-answered input instead of the smaller one",
    );
    report.push_note(
        "single-core CI hosts serialize the workers, so wall deltas are indicative \
         only; the equivalence assertions are the load-bearing part",
    );
    report
}

// ---------------------------------------------------------------------
// E11 — multi-query serving layer
// ---------------------------------------------------------------------

/// E11: N concurrent query streams through one `DiscoServer`.
///
/// A shared federation fronts N ∈ {1, 4, 16} sessions, each issuing a
/// stream of OQL queries concurrently through one serving layer —
/// shared plan cache, admission control (at most 4 queries execute at
/// once), and a shared wrapper-connection pool (2 in-flight calls per
/// repository).  Every concurrent answer is asserted multiset-identical
/// to the serial baseline; the table tracks per-query p50/p99 latency
/// and aggregate answered rows/s as the stream count rises.
///
/// # Panics
///
/// Panics if a concurrent answer diverges from the serial baseline.
#[must_use]
pub fn e11_serving(scale: Scale) -> Report {
    use disco_runtime::SourcePool;
    use disco_server::{DiscoServer, ServerConfig};
    use std::sync::Arc;

    let sources = 4usize;
    let rows = scale.rows.max(40);
    let chunk = (rows / 4).max(1);
    // Small but real per-call sleeps, so concurrency and queuing are
    // visible in wall-clock rather than simulated.
    let profile = NetworkProfile {
        base_latency_us: 300,
        per_row_us: 5,
        jitter: 0.0,
        availability: Availability::Available,
        real_sleep: true,
        chunk_rows: chunk,
    };
    let queries_per_stream = scale.trials.clamp(6, 16);
    let mut report = Report::new(
        "E11",
        "multi-query serving: concurrent streams through one server",
        &format!(
            "{sources} person sources x {rows} rows (real sleeps), one disco-server \
             (admission cap 4, source pool cap 2/repo, shared plan cache); N streams x \
             {queries_per_stream} queries each, answers checked against serial"
        ),
        &[
            "streams",
            "queries",
            "p50 ms",
            "p99 ms",
            "wall ms",
            "rows/s",
            "admission queued",
            "pool queued",
            "cache hits",
        ],
    );

    let mut federation =
        person_federation_with_profile(sources, rows, CapabilitySet::full(), profile);
    federation.mediator.set_deadline(None);
    let expected = federation
        .mediator
        .query(PERSON_QUERY)
        .expect("serial baseline executes");
    assert!(expected.is_complete(), "baseline must be complete");

    let percentile = |samples: &mut Vec<f64>, p: f64| -> f64 {
        samples.sort_by(f64::total_cmp);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let index = ((samples.len() - 1) as f64 * p).round() as usize;
        samples[index]
    };

    for streams in [1usize, 4, 16] {
        let server = DiscoServer::from_mediator(
            &federation.mediator,
            ServerConfig::default()
                .with_max_concurrent(4)
                .with_source_pool(Arc::new(SourcePool::new(2))),
        );
        let started = Instant::now();
        let mut latencies: Vec<f64> = Vec::with_capacity(streams * queries_per_stream);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(streams);
            for _ in 0..streams {
                let server = &server;
                let expected = &expected;
                handles.push(scope.spawn(move || {
                    let session = server.session();
                    let mut stream_latencies = Vec::with_capacity(queries_per_stream);
                    for _ in 0..queries_per_stream {
                        let at = Instant::now();
                        let answer = session.query(PERSON_QUERY).expect("query executes");
                        stream_latencies.push(at.elapsed().as_secs_f64() * 1000.0);
                        assert!(answer.is_complete());
                        assert_eq!(
                            answer.data(),
                            expected.data(),
                            "concurrent answer diverged from serial"
                        );
                    }
                    stream_latencies
                }));
            }
            for handle in handles {
                latencies.extend(handle.join().expect("stream thread completes"));
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let answered_rows = streams * queries_per_stream * expected.data().len();
        let stats = server.stats();
        report.push_row([
            streams.to_string(),
            (streams * queries_per_stream).to_string(),
            fmt_f64(percentile(&mut latencies, 0.50)),
            fmt_f64(percentile(&mut latencies, 0.99)),
            fmt_f64(wall_ms),
            fmt_f64(answered_rows as f64 / (wall_ms / 1000.0)),
            stats.admission_queued.0.to_string(),
            stats
                .source_pool_queued
                .map_or_else(|| "0".to_string(), |(queued, _)| queued.to_string()),
            stats.plan_cache.0.to_string(),
        ]);
    }
    report.push_note(
        "every concurrent answer is asserted multiset-identical to the serial \
         baseline; p50/p99 over all per-query latencies of the round",
    );
    report.push_note(
        "aggregate rows/s keeps rising with streams while per-query p99 degrades \
         gracefully: admission (cap 4) and the source pool (cap 2/repo) queue the \
         excess instead of oversubscribing the engine",
    );
    report
}

// ---------------------------------------------------------------------
// E12 — memory-budgeted spilling
// ---------------------------------------------------------------------

/// E12: pipeline-breaker state at ~10x the memory budget.
///
/// Runs a hash join and a distinct whose breaker state (build table /
/// seen-set) is ~10x `PipelineOptions::mem_budget` and compares against
/// the default unbounded path: answers are identical, tracked bytes stay
/// bounded by the budget (+ at most one batch of overshoot, the
/// trip-detection granularity), and the spill counters are nonzero.  The
/// state size is measured first with a never-tripping bounded probe
/// (`peak KiB` of the `unbounded` rows), and the budget for the
/// `budgeted` rows is set to a tenth of it.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn e12_spill(scale: Scale) -> Report {
    use disco_runtime::{
        evaluate_physical_with, reference, MemBudget, PipelineMetrics, PipelineOptions,
        ResolvedExecs,
    };
    use disco_value::{Bag, StructValue, Value};

    let keys = (scale.rows * 100).max(2_000);
    let probe_rows = keys * 5;
    let person = |i: usize| -> Value {
        Value::Struct(
            StructValue::new(vec![
                ("id", Value::Int(i as i64)),
                ("name", Value::from(format!("person-{i}").as_str())),
                ("salary", Value::Int((i % 199) as i64)),
            ])
            .unwrap(),
        )
    };
    let join = {
        let left: Bag = (0..probe_rows).map(|i| person(i % keys)).collect();
        let right: Bag = (0..keys).map(person).collect();
        LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x")),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name"))
    };
    let distinct = {
        let input: Bag = (0..probe_rows).map(|i| person(i % keys)).collect();
        LogicalExpr::Distinct(Box::new(LogicalExpr::Data(input)))
    };

    let trials = scale.trials.clamp(3, 7);
    let mut report = Report::new(
        "E12",
        "memory-budgeted spilling: breaker state at ~10x the budget",
        &format!(
            "hash join ({probe_rows} probe x {keys} build rows) and distinct \
             ({probe_rows} rows, {keys} distinct) with mem_budget = state/10; \
             median of {trials} trials"
        ),
        &[
            "workload",
            "mode",
            "budget KiB",
            "wall ms",
            "peak KiB",
            "peak/budget",
            "spilled KiB",
            "partitions",
        ],
    );

    let resolved = ResolvedExecs::default();
    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let kib = |bytes: f64| -> f64 { bytes / 1024.0 };
    for (name, plan) in [("join", &join), ("distinct", &distinct)] {
        let physical = lower(plan).expect("plan lowers");
        let expected =
            reference::evaluate_physical(&physical, &resolved).expect("reference evaluates");

        // A never-tripping bounded probe measures the breaker state size
        // (the unbounded budget is a no-op and tracks nothing).
        let probe = PipelineMetrics::new();
        let probed = evaluate_physical_with(
            &physical,
            &resolved,
            &probe,
            PipelineOptions {
                mem_budget: MemBudget::Bytes(usize::MAX / 2),
                ..PipelineOptions::default()
            },
        )
        .expect("probe evaluates");
        assert_eq!(probed, expected, "E12 {name}: probe answer must match");
        assert_eq!(probe.bytes_spilled(), 0, "the probe budget never trips");
        let state = probe.peak_tracked_bytes();
        let budget = (state / 10).max(4096);

        for bounded in [false, true] {
            let mem_budget = if bounded {
                MemBudget::Bytes(budget)
            } else {
                MemBudget::Unbounded
            };
            let mut walls = Vec::with_capacity(trials);
            let metrics = PipelineMetrics::new();
            for _ in 0..trials {
                let trial = PipelineMetrics::new();
                let started = Instant::now();
                let out = evaluate_physical_with(
                    &physical,
                    &resolved,
                    &trial,
                    PipelineOptions {
                        mem_budget,
                        ..PipelineOptions::default()
                    },
                )
                .expect("evaluates");
                walls.push(started.elapsed().as_secs_f64() * 1000.0);
                assert_eq!(
                    out, expected,
                    "E12 {name}: spilling must not change answers"
                );
                metrics.merge(&trial);
            }
            let spilled = metrics.bytes_spilled() as f64 / trials as f64;
            let peak = if bounded {
                metrics.peak_tracked_bytes()
            } else {
                state
            };
            if bounded {
                assert!(
                    metrics.bytes_spilled() > 0,
                    "E12 {name}: a budget of state/10 must spill"
                );
                assert!(metrics.spill_partitions() > 0);
            } else {
                assert_eq!(metrics.bytes_spilled(), 0, "unbounded never spills");
            }
            report.push_row([
                name.to_string(),
                if bounded { "budgeted" } else { "unbounded" }.to_string(),
                if bounded {
                    fmt_f64(kib(budget as f64))
                } else {
                    "-".to_string()
                },
                fmt_f64(median(&mut walls)),
                fmt_f64(kib(peak as f64)),
                if bounded {
                    fmt_f64(peak as f64 / budget as f64)
                } else {
                    "-".to_string()
                },
                if bounded {
                    fmt_f64(kib(spilled))
                } else {
                    "0".to_string()
                },
                (metrics.spill_partitions() / trials).to_string(),
            ]);
        }
    }
    report.push_note(
        "peak KiB of the unbounded rows is the breaker state measured by a \
         never-tripping bounded probe; budgeted runs get a tenth of it",
    );
    report.push_note(
        "peak/budget stays near 1: trips are acted on per admitted entry, so tracked \
         bytes overshoot by at most one entry before state moves to disk",
    );
    report
}

/// Runs every experiment at the given scale.
#[must_use]
pub fn run_all(scale: Scale) -> Vec<Report> {
    vec![
        e1_availability(scale),
        e2_partial_eval(scale),
        e3_pushdown(scale),
        e4_calibration(scale),
        e5_scaling_dba(scale),
        e6_optimizer_search(scale),
        e7_pipeline(scale),
        e8_semijoin_gap(scale),
        e9_evaluator_throughput(scale),
        e10_federation_overlap(scale),
        e10_heterogeneous_adaptive(scale),
        e11_serving(scale),
        e12_spill(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_rows_at_quick_scale() {
        let scale = Scale::quick();
        for report in run_all(scale) {
            assert!(!report.rows.is_empty(), "{} produced no rows", report.id);
            assert!(!report.columns.is_empty());
            let text = report.to_text();
            assert!(text.contains(&report.id));
        }
    }

    #[test]
    fn e1_partial_fraction_dominates_all_or_nothing() {
        let report = e1_availability(Scale {
            trials: 10,
            rows: 30,
            max_sources: 8,
        });
        // For every row, the DISCO partial-data fraction (col 5) is at least
        // the all-or-nothing fraction (col 4).
        for row in &report.rows {
            let strict: f64 = row[4].trim_end_matches('%').parse().unwrap();
            let disco: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(disco + 1e-9 >= strict, "row {row:?}");
        }
    }

    #[test]
    fn e3_get_only_ships_everything_and_project_narrows() {
        let report = e3_pushdown(Scale::quick());
        for row in &report.rows {
            if row[0] == "get" {
                assert_eq!(
                    row[5], "100.0%",
                    "get-only wrappers ship all values: {row:?}"
                );
            }
            if row[0] == "get+project" {
                let pct: f64 = row[5].trim_end_matches('%').parse().unwrap();
                assert!(
                    pct < 100.0,
                    "project-capable wrappers narrow tuples: {row:?}"
                );
            }
        }
    }
}
