//! Workload builders shared by the experiments and the Criterion benches.
//!
//! Every builder is deterministic (seeded) so the harness output is
//! reproducible run to run.

use std::sync::Arc;

use disco_catalog::{Attribute, InterfaceDef, TypeRef};
use disco_core::{CapabilitySet, Mediator, NetworkProfile};
use disco_source::{generator, SimulatedLink};

/// A federation plus the per-source links for availability injection.
pub struct Federation {
    /// The mediator integrating every source.
    pub mediator: Mediator,
    /// One simulated link per source, in registration order.
    pub links: Vec<Arc<SimulatedLink>>,
}

/// Builds a federation of `n` person sources with `rows` rows each.
#[must_use]
pub fn person_federation(n: usize, rows: usize, capabilities: CapabilitySet) -> Federation {
    person_federation_with_profile(n, rows, capabilities, NetworkProfile::fast())
}

/// Builds a person federation with a specific network profile per source.
#[must_use]
pub fn person_federation_with_profile(
    n: usize,
    rows: usize,
    capabilities: CapabilitySet,
    profile: NetworkProfile,
) -> Federation {
    let mut mediator = Mediator::new("bench-person");
    mediator
        .define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .expect("fresh catalog");
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let table = generator::person_table(&format!("person{i}"), rows, i as u64, 97);
        let link = mediator
            .add_relational_source(
                &format!("person{i}"),
                "Person",
                &format!("r{i}"),
                table,
                profile.clone(),
                capabilities.clone(),
            )
            .expect("registration succeeds");
        links.push(link);
    }
    Federation { mediator, links }
}

/// Builds a federation of `n` water-quality monitoring stations with
/// `days` measurements each — the paper's environmental application.
#[must_use]
pub fn water_federation(n: usize, days: usize) -> Federation {
    let mut mediator = Mediator::new("bench-water");
    mediator
        .define_interface(
            InterfaceDef::new("Measurement")
                .with_extent_name("measurement")
                .with_attribute(Attribute::new("site", TypeRef::String))
                .with_attribute(Attribute::new("day", TypeRef::Int))
                .with_attribute(Attribute::new("ph", TypeRef::Float))
                .with_attribute(Attribute::new("turbidity", TypeRef::Int))
                .with_attribute(Attribute::new("dissolved_oxygen", TypeRef::Float)),
        )
        .expect("fresh catalog");
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let table = generator::water_quality_table(&format!("measurement{i}"), i, days, 41);
        let link = mediator
            .add_relational_source(
                &format!("measurement{i}"),
                "Measurement",
                &format!("r_station{i}"),
                table,
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .expect("registration succeeds");
        links.push(link);
    }
    Federation { mediator, links }
}

/// Builds an employee/manager federation used by the join experiments.
/// `employee0`/`manager0` live in the same repository (joinable at the
/// source), `employee1` lives elsewhere.
#[must_use]
pub fn employee_federation(rows: usize, departments: usize) -> Federation {
    let mut mediator = Mediator::new("bench-employee");
    mediator
        .define_interface(
            InterfaceDef::new("Employee")
                .with_extent_name("employee")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .expect("fresh catalog");
    mediator
        .define_interface(
            InterfaceDef::new("Manager")
                .with_extent_name("manager")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int)),
        )
        .expect("fresh catalog");
    let mut links = Vec::new();
    links.push(
        mediator
            .add_relational_source(
                "employee0",
                "Employee",
                "r0",
                generator::employee_table("employee0", rows, departments, 11),
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .expect("registration succeeds"),
    );
    links.push(
        mediator
            .add_relational_source(
                "manager0",
                "Manager",
                "r0_managers",
                generator::manager_table("manager0", departments, 11),
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .expect("registration succeeds"),
    );
    links.push(
        mediator
            .add_relational_source(
                "employee1",
                "Employee",
                "r1",
                generator::employee_table("employee1", rows, departments, 13),
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .expect("registration succeeds"),
    );
    Federation { mediator, links }
}

/// The standard capability levels compared by the pushdown experiment.
#[must_use]
pub fn capability_levels() -> Vec<(&'static str, CapabilitySet)> {
    use disco_algebra::OperatorKind;
    vec![
        ("get", CapabilitySet::get_only()),
        (
            "get+project",
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true),
        ),
        (
            "get+project+select",
            CapabilitySet::new([
                OperatorKind::Get,
                OperatorKind::Project,
                OperatorKind::Select,
            ])
            .with_composition(true),
        ),
        ("full(+join)", CapabilitySet::full()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_federation_builds_and_answers() {
        let federation = person_federation(3, 10, CapabilitySet::full());
        assert_eq!(federation.links.len(), 3);
        let answer = federation
            .mediator
            .query("count(select p.id from p in person)")
            .unwrap();
        assert!(answer.is_complete());
    }

    #[test]
    fn water_and_employee_federations_build() {
        let water = water_federation(2, 5);
        assert_eq!(water.mediator.catalog().stats().extents, 2);
        let employees = employee_federation(20, 4);
        assert_eq!(employees.mediator.catalog().stats().extents, 3);
        assert_eq!(capability_levels().len(), 4);
    }
}
