//! Workload builders shared by the experiments and the Criterion benches.
//!
//! Every builder is deterministic (seeded) so the harness output is
//! reproducible run to run.

use std::sync::Arc;

use disco_catalog::{Attribute, InterfaceDef, TypeRef};
use disco_core::{CapabilitySet, Mediator, NetworkProfile};
use disco_source::{generator, SimulatedLink};

/// A federation plus the per-source links for availability injection.
pub struct Federation {
    /// The mediator integrating every source.
    pub mediator: Mediator,
    /// One simulated link per source, in registration order.
    pub links: Vec<Arc<SimulatedLink>>,
}

/// Builds a federation of `n` person sources with `rows` rows each.
#[must_use]
pub fn person_federation(n: usize, rows: usize, capabilities: CapabilitySet) -> Federation {
    person_federation_with_profile(n, rows, capabilities, NetworkProfile::fast())
}

/// Builds a person federation with a specific network profile per source.
#[must_use]
pub fn person_federation_with_profile(
    n: usize,
    rows: usize,
    capabilities: CapabilitySet,
    profile: NetworkProfile,
) -> Federation {
    let mut mediator = Mediator::new("bench-person");
    mediator
        .define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .expect("fresh catalog");
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let table = generator::person_table(&format!("person{i}"), rows, i as u64, 97);
        let link = mediator
            .add_relational_source(
                &format!("person{i}"),
                "Person",
                &format!("r{i}"),
                table,
                profile.clone(),
                capabilities.clone(),
            )
            .expect("registration succeeds");
        links.push(link);
    }
    Federation { mediator, links }
}

/// Builds a federation of `n` water-quality monitoring stations with
/// `days` measurements each — the paper's environmental application.
#[must_use]
pub fn water_federation(n: usize, days: usize) -> Federation {
    let mut mediator = Mediator::new("bench-water");
    mediator
        .define_interface(
            InterfaceDef::new("Measurement")
                .with_extent_name("measurement")
                .with_attribute(Attribute::new("site", TypeRef::String))
                .with_attribute(Attribute::new("day", TypeRef::Int))
                .with_attribute(Attribute::new("ph", TypeRef::Float))
                .with_attribute(Attribute::new("turbidity", TypeRef::Int))
                .with_attribute(Attribute::new("dissolved_oxygen", TypeRef::Float)),
        )
        .expect("fresh catalog");
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let table = generator::water_quality_table(&format!("measurement{i}"), i, days, 41);
        let link = mediator
            .add_relational_source(
                &format!("measurement{i}"),
                "Measurement",
                &format!("r_station{i}"),
                table,
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .expect("registration succeeds");
        links.push(link);
    }
    Federation { mediator, links }
}

/// Builds an employee/manager federation used by the join experiments.
/// `employee0`/`manager0` live in the same repository (joinable at the
/// source), `employee1` lives elsewhere.
#[must_use]
pub fn employee_federation(rows: usize, departments: usize) -> Federation {
    let mut mediator = Mediator::new("bench-employee");
    mediator
        .define_interface(
            InterfaceDef::new("Employee")
                .with_extent_name("employee")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .expect("fresh catalog");
    mediator
        .define_interface(
            InterfaceDef::new("Manager")
                .with_extent_name("manager")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("dept", TypeRef::Int)),
        )
        .expect("fresh catalog");
    let employee0 = mediator
        .add_relational_source(
            "employee0",
            "Employee",
            "r0",
            generator::employee_table("employee0", rows, departments, 11),
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .expect("registration succeeds");
    let manager0 = mediator
        .add_relational_source(
            "manager0",
            "Manager",
            "r0_managers",
            generator::manager_table("manager0", departments, 11),
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .expect("registration succeeds");
    let employee1 = mediator
        .add_relational_source(
            "employee1",
            "Employee",
            "r1",
            generator::employee_table("employee1", rows, departments, 13),
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .expect("registration succeeds");
    let links = vec![employee0, manager0, employee1];
    Federation { mediator, links }
}

/// Deterministic person bag for the E9 evaluator pipelines: `id` cycles
/// over `id_space`, salary over a 0-999 spread.  Shared by the criterion
/// bench and the harness experiment so their workloads cannot drift
/// apart.
#[must_use]
pub fn e9_person_bag(rows: usize, id_space: i64) -> disco_value::Bag {
    use disco_value::{Bag, StructValue, Value};
    let mut bag = Bag::with_capacity(rows);
    for i in 0..rows {
        let i64i = i as i64;
        bag.insert(Value::Struct(
            StructValue::new(vec![
                ("id", Value::Int(i64i % id_space)),
                ("name", Value::from(format!("person-{}", i64i % id_space))),
                ("salary", Value::Int((i64i * 37) % 1000)),
            ])
            .expect("distinct fields"),
        ));
    }
    bag
}

/// E9 pipeline: filter salary > 500, project the name.
#[must_use]
pub fn e9_filter_project_plan(rows: usize) -> disco_algebra::LogicalExpr {
    use disco_algebra::{LogicalExpr, ScalarExpr, ScalarOp};
    LogicalExpr::Data(e9_person_bag(rows, 1024))
        .bind("x")
        .filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::constant(500i64),
        ))
        .map_project(ScalarExpr::var_field("x", "name"))
}

/// E9 pipeline: equi-join `rows` left rows against `rows / 10` right rows
/// on a shared id space, projecting a computed struct.
#[must_use]
pub fn e9_hash_join_plan(rows: usize) -> disco_algebra::LogicalExpr {
    use disco_algebra::{LogicalExpr, ScalarExpr, ScalarOp};
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(e9_person_bag(rows, 1024)).bind("x")),
        right: Box::new(LogicalExpr::Data(e9_person_bag(rows / 10, 1024)).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("name".into(), ScalarExpr::var_field("x", "name")),
        (
            "total".into(),
            ScalarExpr::binary(
                ScalarOp::Add,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::var_field("y", "salary"),
            ),
        ),
    ]))
}

/// E9 pipeline: project the (cycling) name, then distinct.
#[must_use]
pub fn e9_distinct_plan(rows: usize) -> disco_algebra::LogicalExpr {
    use disco_algebra::{LogicalExpr, ScalarExpr};
    LogicalExpr::Distinct(Box::new(
        LogicalExpr::Data(e9_person_bag(rows, 1024))
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
    ))
}

/// E9 deep pipeline: filter → hash-join → computed projection → distinct.
///
/// The streaming engine's showcase shape: four chained operators of which
/// only the join build side (`rows / 10` rows) and the distinct seen-set
/// buffer anything; the seed evaluator materialized a full intermediate
/// bag at every one of the four boundaries.
#[must_use]
pub fn e9_deep_pipeline_plan(rows: usize) -> disco_algebra::LogicalExpr {
    use disco_algebra::{LogicalExpr, ScalarExpr, ScalarOp};
    let joined = LogicalExpr::Join {
        left: Box::new(
            LogicalExpr::Data(e9_person_bag(rows, 1024))
                .bind("x")
                .filter(ScalarExpr::binary(
                    ScalarOp::Gt,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::constant(250i64),
                )),
        ),
        right: Box::new(LogicalExpr::Data(e9_person_bag(rows / 10, 1024)).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("name".into(), ScalarExpr::var_field("x", "name")),
        (
            "total".into(),
            ScalarExpr::binary(
                ScalarOp::Add,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::var_field("y", "salary"),
            ),
        ),
    ]));
    LogicalExpr::Distinct(Box::new(joined))
}

/// The standard capability levels compared by the pushdown experiment.
#[must_use]
pub fn capability_levels() -> Vec<(&'static str, CapabilitySet)> {
    use disco_algebra::OperatorKind;
    vec![
        ("get", CapabilitySet::get_only()),
        (
            "get+project",
            CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true),
        ),
        (
            "get+project+select",
            CapabilitySet::new([
                OperatorKind::Get,
                OperatorKind::Project,
                OperatorKind::Select,
            ])
            .with_composition(true),
        ),
        ("full(+join)", CapabilitySet::full()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_federation_builds_and_answers() {
        let federation = person_federation(3, 10, CapabilitySet::full());
        assert_eq!(federation.links.len(), 3);
        let answer = federation
            .mediator
            .query("count(select p.id from p in person)")
            .unwrap();
        assert!(answer.is_complete());
    }

    #[test]
    fn water_and_employee_federations_build() {
        let water = water_federation(2, 5);
        assert_eq!(water.mediator.catalog().stats().extents, 2);
        let employees = employee_federation(20, 4);
        assert_eq!(employees.mediator.catalog().stats().extents, 3);
        assert_eq!(capability_levels().len(), 4);
    }
}
