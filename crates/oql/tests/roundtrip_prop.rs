//! Property-based tests for the OQL parser / printer pair.
//!
//! The central invariant: printing any AST produces text that re-parses to
//! the same AST.  Partial answers rely on this — the residual query DISCO
//! returns must be resubmittable verbatim.

use disco_oql::ast::{BinaryOp, Expr, FromBinding, SelectExpr};
use disco_oql::{parse_query, print_expr};
use disco_value::Value;
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid keywords", |s| {
        ![
            "select", "from", "in", "where", "union", "bag", "list", "struct", "flatten",
            "element", "define", "as", "and", "or", "not", "nil", "null", "true", "false",
            "sum", "count", "avg", "min", "max", "distinct", "interface", "extent",
            "attribute", "of", "wrapper", "repository", "map",
        ]
        .contains(&s.as_str())
    })
}

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Literal(Value::Int(i64::from(i)))),
        "[a-zA-Z ]{0,10}".prop_map(|s| Expr::Literal(Value::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn scalar_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy(),
        ident_strategy().prop_map(Expr::Ident),
        (ident_strategy(), ident_strategy()).prop_map(|(v, f)| Expr::ident(v).path(f)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::Gt),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            prop::collection::vec((ident_strategy(), inner.clone()), 1..3).prop_filter_map(
                "distinct struct field names",
                |fields| {
                    let mut names: Vec<&String> = fields.iter().map(|(n, _)| n).collect();
                    names.sort();
                    names.dedup();
                    if names.len() == fields.len() {
                        Some(Expr::StructConstruct(fields))
                    } else {
                        None
                    }
                }
            ),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Expr> {
    (
        scalar_expr_strategy(),
        prop::collection::vec((ident_strategy(), ident_strategy()), 1..3),
        prop::option::of(scalar_expr_strategy()),
        any::<bool>(),
    )
        .prop_map(|(projection, bindings, where_clause, distinct)| {
            Expr::Select(SelectExpr {
                distinct,
                projection: Box::new(projection),
                bindings: bindings
                    .into_iter()
                    .map(|(var, coll)| FromBinding {
                        var,
                        collection: Expr::Ident(coll),
                    })
                    .collect(),
                where_clause: where_clause.map(Box::new),
            })
        })
}

fn query_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        select_strategy(),
        prop::collection::vec(select_strategy(), 1..3).prop_map(Expr::Union),
        prop::collection::vec(literal_strategy(), 0..4).prop_map(Expr::BagConstruct),
        select_strategy().prop_map(|s| Expr::Flatten(Box::new(s))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(expr in query_strategy()) {
        let printed = print_expr(&expr);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(expr, reparsed, "printed form: {}", printed);
    }

    #[test]
    fn scalar_print_then_parse_is_identity(expr in scalar_expr_strategy()) {
        let printed = print_expr(&expr);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(expr, reparsed, "printed form: {}", printed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,60}") {
        // Fuzz: any printable-ASCII input must either parse or produce a
        // structured error, never panic.
        let _ = parse_query(&input);
    }
}
