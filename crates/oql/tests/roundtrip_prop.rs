//! Property-based tests for the OQL parser / printer pair.
//!
//! The central invariant: printing any AST produces text that re-parses to
//! the same AST.  Partial answers rely on this — the residual query DISCO
//! returns must be resubmittable verbatim.
//!
//! ASTs are generated with a seeded deterministic RNG (the offline `rand`
//! shim) rather than proptest — the build environment has no crates.io
//! access.  Every failure reproduces from its printed seed.

use disco_oql::ast::{BinaryOp, Expr, FromBinding, SelectExpr};
use disco_oql::{parse_query, print_expr};
use disco_value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYWORDS: &[&str] = &[
    "select",
    "from",
    "in",
    "where",
    "union",
    "bag",
    "list",
    "struct",
    "flatten",
    "element",
    "define",
    "as",
    "and",
    "or",
    "not",
    "nil",
    "null",
    "true",
    "false",
    "sum",
    "count",
    "avg",
    "min",
    "max",
    "distinct",
    "interface",
    "extent",
    "attribute",
    "of",
    "wrapper",
    "repository",
    "map",
];

fn random_ident(rng: &mut StdRng) -> String {
    loop {
        let len = rng.gen_range(1..9usize);
        let mut s = String::new();
        s.push(char::from(
            b'a' + u8::try_from(rng.gen_range(0..26u32)).unwrap(),
        ));
        for _ in 1..len {
            let c = match rng.gen_range(0..4u32) {
                0 => char::from(b'0' + u8::try_from(rng.gen_range(0..10u32)).unwrap()),
                1 => '_',
                _ => char::from(b'a' + u8::try_from(rng.gen_range(0..26u32)).unwrap()),
            };
            s.push(c);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn random_literal(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..4u32) {
        0 => Expr::Literal(Value::Int(rng.gen_range(-1_000_000..1_000_000i64))),
        1 => {
            let len = rng.gen_range(0..11usize);
            let s: String = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        ' '
                    } else if rng.gen_bool(0.5) {
                        char::from(b'a' + u8::try_from(rng.gen_range(0..26u32)).unwrap())
                    } else {
                        char::from(b'A' + u8::try_from(rng.gen_range(0..26u32)).unwrap())
                    }
                })
                .collect();
            Expr::Literal(Value::Str(s.into()))
        }
        2 => Expr::Literal(Value::Bool(rng.gen_bool(0.5))),
        _ => Expr::Literal(Value::Null),
    }
}

fn random_scalar(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0..3u32) {
            0 => random_literal(rng),
            1 => Expr::Ident(random_ident(rng)),
            _ => Expr::ident(random_ident(rng)).path(random_ident(rng)),
        };
    }
    match rng.gen_range(0..3u32) {
        0 => {
            let op = match rng.gen_range(0..8u32) {
                0 => BinaryOp::Add,
                1 => BinaryOp::Sub,
                2 => BinaryOp::Mul,
                3 => BinaryOp::Eq,
                4 => BinaryOp::Lt,
                5 => BinaryOp::Gt,
                6 => BinaryOp::And,
                _ => BinaryOp::Or,
            };
            Expr::binary(
                op,
                random_scalar(rng, depth - 1),
                random_scalar(rng, depth - 1),
            )
        }
        1 => Expr::Not(Box::new(random_scalar(rng, depth - 1))),
        _ => {
            // Struct construction with distinct field names.
            let n = rng.gen_range(1..3usize);
            let mut fields: Vec<(String, Expr)> = Vec::new();
            while fields.len() < n {
                let name = random_ident(rng);
                if fields.iter().all(|(existing, _)| *existing != name) {
                    fields.push((name, random_scalar(rng, depth - 1)));
                }
            }
            Expr::StructConstruct(fields)
        }
    }
}

fn random_select(rng: &mut StdRng) -> Expr {
    let projection = random_scalar(rng, 2);
    let n_bindings = rng.gen_range(1..3usize);
    let bindings = (0..n_bindings)
        .map(|_| FromBinding {
            var: random_ident(rng),
            collection: Expr::Ident(random_ident(rng)),
        })
        .collect();
    let where_clause = if rng.gen_bool(0.5) {
        Some(Box::new(random_scalar(rng, 2)))
    } else {
        None
    };
    Expr::Select(SelectExpr {
        distinct: rng.gen_bool(0.5),
        projection: Box::new(projection),
        bindings,
        where_clause,
    })
}

fn random_query(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..4u32) {
        0 => random_select(rng),
        1 => {
            let n = rng.gen_range(1..3usize);
            Expr::Union((0..n).map(|_| random_select(rng)).collect())
        }
        2 => {
            let n = rng.gen_range(0..4usize);
            Expr::BagConstruct((0..n).map(|_| random_literal(rng)).collect())
        }
        _ => Expr::Flatten(Box::new(random_select(rng))),
    }
}

#[test]
fn print_then_parse_is_identity() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let expr = random_query(&mut rng);
        let printed = print_expr(&expr);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to reparse {printed:?}: {e}"));
        assert_eq!(expr, reparsed, "seed {seed}, printed form: {printed}");
    }
}

#[test]
fn scalar_print_then_parse_is_identity() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x5CA1A8 + seed);
        let expr = random_scalar(&mut rng, 3);
        let printed = print_expr(&expr);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to reparse {printed:?}: {e}"));
        assert_eq!(expr, reparsed, "seed {seed}, printed form: {printed}");
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    // Fuzz: any printable-ASCII input must either parse or produce a
    // structured error, never panic.
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xF022 + seed);
        let len = rng.gen_range(0..61usize);
        let input: String = (0..len)
            .map(|_| char::from(b' ' + u8::try_from(rng.gen_range(0..95u32)).unwrap()))
            .collect();
        let _ = parse_query(&input);
    }
}
