//! Pretty-printer: turns an [`Expr`] back into OQL text.
//!
//! DISCO's partial-evaluation semantics require that the unevaluated part
//! of a plan can be "transformed back into a high level query" (§4); the
//! printer provides the final step of that transformation.  The output
//! re-parses to an equal AST (round-trip property, tested with proptest in
//! the crate's test suite).

use std::fmt::Write as _;

use disco_value::Value;

use crate::ast::{BinaryOp, Expr, SelectExpr};

/// Renders an expression as OQL text.
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr);
    out
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Literal(v) => write_literal(out, v),
        Expr::Ident(name) => out.push_str(name),
        Expr::Path(base, field) => {
            write_expr(out, base);
            let _ = write!(out, ".{field}");
        }
        Expr::Binary { op, left, right } => {
            // Comparisons are non-associative: a nested comparison operand
            // must be parenthesised to re-parse.
            let needs_parens_left = precedence(left) < precedence_of_op(*op)
                || (op.is_comparison() && precedence(left) == precedence_of_op(*op));
            let needs_parens_right = precedence(right) <= precedence_of_op(*op)
                && !matches!(
                    right.as_ref(),
                    Expr::Literal(_) | Expr::Ident(_) | Expr::Path(..)
                );
            if needs_parens_left {
                out.push('(');
                write_expr(out, left);
                out.push(')');
            } else {
                write_expr(out, left);
            }
            let _ = write!(out, " {} ", op.symbol());
            if needs_parens_right {
                out.push('(');
                write_expr(out, right);
                out.push(')');
            } else {
                write_expr(out, right);
            }
        }
        Expr::Not(inner) => {
            out.push_str("not (");
            write_expr(out, inner);
            out.push(')');
        }
        Expr::Select(sel) => write_select(out, sel),
        Expr::Union(items) => write_call_like(out, "union", items),
        Expr::BagConstruct(items) => write_call_like(out, "bag", items),
        Expr::ListConstruct(items) => write_call_like(out, "list", items),
        Expr::StructConstruct(fields) => {
            out.push_str("struct(");
            for (i, (name, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{name}: ");
                write_expr(out, value);
            }
            out.push(')');
        }
        Expr::Flatten(inner) => {
            out.push_str("flatten(");
            write_expr(out, inner);
            out.push(')');
        }
        Expr::Element(inner) => {
            out.push_str("element(");
            write_expr(out, inner);
            out.push(')');
        }
        Expr::Aggregate(func, inner) => {
            let _ = write!(out, "{}(", func.name());
            write_expr(out, inner);
            out.push(')');
        }
        Expr::Call(name, args) => write_call_like(out, name, args),
    }
}

fn write_call_like(out: &mut String, name: &str, items: &[Expr]) {
    let _ = write!(out, "{name}(");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, item);
    }
    out.push(')');
}

fn write_select(out: &mut String, sel: &SelectExpr) {
    out.push_str("select ");
    if sel.distinct {
        out.push_str("distinct ");
    }
    write_expr(out, &sel.projection);
    out.push_str(" from ");
    for (i, binding) in sel.bindings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} in ", binding.var);
        write_expr(out, &binding.collection);
    }
    if let Some(where_clause) = &sel.where_clause {
        out.push_str(" where ");
        write_expr(out, where_clause);
    }
}

fn write_literal(out: &mut String, value: &Value) {
    // `Value`'s Display already prints OQL literal notation, including
    // Bag(...) and struct(...).
    let _ = write!(out, "{value}");
}

/// Precedence used only to decide parenthesisation when printing.
fn precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => precedence_of_op(*op),
        Expr::Not(_) => 3,
        Expr::Select(_) => 0,
        _ => 10,
    }
}

fn precedence_of_op(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge => 4,
        BinaryOp::Add | BinaryOp::Sub => 5,
        BinaryOp::Mul | BinaryOp::Div => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(q: &str) -> String {
        let ast = parse_query(q).unwrap();
        let printed = print_expr(&ast);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed query failed to reparse: {printed} — {e}"));
        assert_eq!(ast, reparsed, "round trip changed the AST for: {printed}");
        printed
    }

    #[test]
    fn prints_intro_query() {
        let printed = round_trip("select x.name from x in person where x.salary > 10");
        assert_eq!(
            printed,
            "select x.name from x in person where x.salary > 10"
        );
    }

    #[test]
    fn prints_partial_answer() {
        let printed =
            round_trip("union(select y.name from y in person0 where y.salary > 10, bag(\"Sam\"))");
        assert!(printed.starts_with("union(select y.name"));
        assert!(printed.ends_with("bag(\"Sam\"))"));
    }

    #[test]
    fn round_trips_paper_view_bodies() {
        round_trip(
            "select struct(name: x.name, salary: x.salary + y.salary) \
             from x in person0, y in person1 where x.id = y.id",
        );
        round_trip(
            "select struct(name: x.name, salary: sum(select z.salary from z in person where x.id = z.id)) \
             from x in person*",
        );
        round_trip(
            "bag(select struct(name: x.name, salary: x.salary) from x in person, \
                 select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)",
        );
        round_trip("flatten(select x.e from x in metaextent where x.interface = Person)");
    }

    #[test]
    fn parenthesises_mixed_precedence() {
        round_trip("select x from x in r where (x.a + 1) * 2 > 10 and x.b < 5 or x.c = 1");
        round_trip("select x from x in r where not (x.a = 1 or x.b = 2)");
    }

    #[test]
    fn prints_literals_in_reparsable_form() {
        round_trip("select struct(a: 1, b: 2.5, c: \"s\", d: nil, e: true) from x in r");
    }

    #[test]
    fn prints_distinct_and_element() {
        let p = round_trip("select distinct x.name from x in person");
        assert!(p.contains("select distinct"));
        round_trip("element(select x from x in r where x.id = 7)");
    }
}
