//! Abstract syntax for the OQL subset and the DISCO ODL extensions.

use disco_value::Value;

/// Binary operators of the OQL expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinaryOp {
    /// Returns `true` for comparison operators (result type boolean).
    #[must_use]
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }

    /// Returns `true` for `and` / `or`.
    #[must_use]
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// The OQL spelling of the operator.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
        }
    }
}

/// Aggregate functions supported in OQL projections and views (§2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `sum(...)`
    Sum,
    /// `count(...)`
    Count,
    /// `avg(...)`
    Avg,
    /// `min(...)`
    Min,
    /// `max(...)`
    Max,
}

impl AggFunc {
    /// Parses an aggregate function name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The OQL spelling.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One range-variable binding in a `from` clause: `x in <collection>`.
#[derive(Debug, Clone, PartialEq)]
pub struct FromBinding {
    /// The range variable (`x`).
    pub var: String,
    /// The collection expression it ranges over (`person`, `union(a,b)`, a
    /// nested select, …).
    pub collection: Expr,
}

/// A `select [distinct] <projection> from <bindings> [where <predicate>]`
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectExpr {
    /// Whether `distinct` was specified.
    pub distinct: bool,
    /// The projected expression (evaluated once per binding combination).
    pub projection: Box<Expr>,
    /// The `from` clause bindings, in order.
    pub bindings: Vec<FromBinding>,
    /// The optional `where` predicate.
    pub where_clause: Option<Box<Expr>>,
}

/// An OQL expression.
///
/// OQL is closed with respect to queries and data (§4: "both queries and
/// answers are simply expressions"), so the same type represents queries,
/// sub-queries, predicates, and the data embedded in partial answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value (`10`, `"Mary"`, `nil`, `true`).
    Literal(Value),
    /// A bare name: range variable, extent, view, or recursive extent
    /// (`person*` keeps the star in the name).
    Ident(String),
    /// Path expression `base.field`.
    Path(Box<Expr>, String),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation `not e`.
    Not(Box<Expr>),
    /// A select-from-where block.
    Select(SelectExpr),
    /// `union(e1, e2, ...)` — bag union of the argument collections.
    Union(Vec<Expr>),
    /// `bag(e1, ..., en)` — bag construction; also used to print data in
    /// partial answers (`Bag("Sam")`).
    BagConstruct(Vec<Expr>),
    /// `list(e1, ..., en)`.
    ListConstruct(Vec<Expr>),
    /// `struct(name: e1, ...)`.
    StructConstruct(Vec<(String, Expr)>),
    /// `flatten(e)` — flattens a bag of bags.
    Flatten(Box<Expr>),
    /// `element(e)` — extracts the single element of a singleton bag.
    Element(Box<Expr>),
    /// An aggregate application, e.g. `sum(select z.salary from …)`.
    Aggregate(AggFunc, Box<Expr>),
    /// A call to a named function that is not an aggregate (reconciliation
    /// functions are "indistinguishable from other functions", §2.2.3).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Builds a literal expression.
    #[must_use]
    pub fn literal(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Builds an identifier expression.
    #[must_use]
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Builds the path expression `self.field`.
    #[must_use]
    pub fn path(self, field: impl Into<String>) -> Expr {
        Expr::Path(Box::new(self), field.into())
    }

    /// Builds `left op right`.
    #[must_use]
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Returns `true` if the expression contains no select / union /
    /// extent references — i.e. it is pure data (used to decide when
    /// partial evaluation has finished).
    #[must_use]
    pub fn is_data(&self) -> bool {
        match self {
            Expr::Literal(_) => true,
            Expr::Ident(_) => false,
            Expr::Path(base, _) => base.is_data(),
            Expr::Binary { left, right, .. } => left.is_data() && right.is_data(),
            Expr::Not(e) | Expr::Flatten(e) | Expr::Element(e) | Expr::Aggregate(_, e) => {
                e.is_data()
            }
            Expr::Select(_) => false,
            Expr::Union(items)
            | Expr::BagConstruct(items)
            | Expr::ListConstruct(items)
            | Expr::Call(_, items) => items.iter().all(Expr::is_data),
            Expr::StructConstruct(fields) => fields.iter().all(|(_, e)| e.is_data()),
        }
    }

    /// Collects the names of collections referenced in `from` clauses and
    /// bare identifier collection positions, recursively.  Used to record
    /// view dependencies and to decide which sources a query touches.
    #[must_use]
    pub fn referenced_collections(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_collections(&mut out, &mut Vec::new());
        out
    }

    fn collect_collections(&self, out: &mut Vec<String>, bound_vars: &mut Vec<String>) {
        match self {
            Expr::Select(sel) => {
                let mut newly_bound = Vec::new();
                for binding in &sel.bindings {
                    binding.collection.collect_collections(out, bound_vars);
                    if let Expr::Ident(name) = &binding.collection {
                        // A bare identifier in collection position is a
                        // collection reference unless it is a previously
                        // bound range variable.
                        if !bound_vars.contains(name) && !out.contains(name) {
                            out.push(name.clone());
                        }
                    }
                    bound_vars.push(binding.var.clone());
                    newly_bound.push(binding.var.clone());
                }
                sel.projection.collect_collections(out, bound_vars);
                if let Some(w) = &sel.where_clause {
                    w.collect_collections(out, bound_vars);
                }
                for _ in newly_bound {
                    bound_vars.pop();
                }
            }
            Expr::Union(items) => {
                for item in items {
                    if let Expr::Ident(name) = item {
                        if !bound_vars.contains(name) && !out.contains(name) {
                            out.push(name.clone());
                        }
                    }
                    item.collect_collections(out, bound_vars);
                }
            }
            Expr::Path(base, _) => base.collect_collections(out, bound_vars),
            Expr::Binary { left, right, .. } => {
                left.collect_collections(out, bound_vars);
                right.collect_collections(out, bound_vars);
            }
            Expr::Not(e) | Expr::Flatten(e) | Expr::Element(e) | Expr::Aggregate(_, e) => {
                e.collect_collections(out, bound_vars);
            }
            Expr::BagConstruct(items) | Expr::ListConstruct(items) | Expr::Call(_, items) => {
                for item in items {
                    item.collect_collections(out, bound_vars);
                }
            }
            Expr::StructConstruct(fields) => {
                for (_, e) in fields {
                    e.collect_collections(out, bound_vars);
                }
            }
            Expr::Literal(_) | Expr::Ident(_) => {}
        }
    }
}

// ---------------------------------------------------------------------
// ODL statements (DISCO extensions included)
// ---------------------------------------------------------------------

/// One attribute declaration inside an ODL interface body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OdlAttribute {
    /// Attribute name.
    pub name: String,
    /// ODL type name as written (`String`, `Short`, …).
    pub type_name: String,
}

/// A parsed ODL / DISCO-DDL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum OdlStatement {
    /// `interface Person (extent person) { attribute String name; ... }`
    /// with optional `: Supertype`.
    Interface {
        /// The interface name.
        name: String,
        /// Optional supertype (`interface Student : Person`).
        supertype: Option<String>,
        /// Optional implicit extent name.
        extent_name: Option<String>,
        /// Declared attributes.
        attributes: Vec<OdlAttribute>,
    },
    /// `extent person0 of Person wrapper w0 repository r0 [map ((..))];`
    Extent {
        /// The extent name in the mediator.
        extent: String,
        /// The mediator interface.
        interface: String,
        /// The wrapper name.
        wrapper: String,
        /// The repository name.
        repository: String,
        /// The raw map text (still parenthesised), if a map clause was given.
        map: Option<String>,
    },
    /// `define double as select ...`
    Define {
        /// The view name.
        name: String,
        /// The view body.
        body: Expr,
    },
    /// `r0 := Repository(host="rodin", name="db", address="1.2.3.4")`
    RepositoryAssign {
        /// The variable (repository name).
        name: String,
        /// Named arguments of the constructor.
        fields: Vec<(String, Value)>,
    },
    /// `w0 := WrapperPostgres()` — any constructor that is not
    /// `Repository` is treated as a wrapper constructor; the constructor
    /// name (minus the `Wrapper` prefix, lower-cased) becomes the wrapper
    /// kind.
    WrapperAssign {
        /// The variable (wrapper name).
        name: String,
        /// The wrapper kind derived from the constructor name.
        kind: String,
    },
    /// A bare OQL query submitted as a statement.
    Query(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_data_distinguishes_queries_from_data() {
        assert!(Expr::literal(1i64).is_data());
        assert!(Expr::BagConstruct(vec![Expr::literal("Sam")]).is_data());
        assert!(!Expr::ident("person0").is_data());
        let sel = Expr::Select(SelectExpr {
            distinct: false,
            projection: Box::new(Expr::ident("x")),
            bindings: vec![FromBinding {
                var: "x".into(),
                collection: Expr::ident("person"),
            }],
            where_clause: None,
        });
        assert!(!sel.is_data());
        // A union of a query and data is not pure data — it is a partial answer.
        let partial = Expr::Union(vec![sel, Expr::BagConstruct(vec![Expr::literal("Sam")])]);
        assert!(!partial.is_data());
    }

    #[test]
    fn referenced_collections_ignores_range_variables() {
        let sel = Expr::Select(SelectExpr {
            distinct: false,
            projection: Box::new(Expr::ident("x").path("name")),
            bindings: vec![
                FromBinding {
                    var: "x".into(),
                    collection: Expr::ident("person0"),
                },
                FromBinding {
                    var: "y".into(),
                    collection: Expr::ident("person1"),
                },
            ],
            where_clause: Some(Box::new(Expr::binary(
                BinaryOp::Eq,
                Expr::ident("x").path("id"),
                Expr::ident("y").path("id"),
            ))),
        });
        assert_eq!(sel.referenced_collections(), vec!["person0", "person1"]);
    }

    #[test]
    fn nested_select_collections_are_collected_once() {
        let inner = Expr::Select(SelectExpr {
            distinct: false,
            projection: Box::new(Expr::ident("z").path("salary")),
            bindings: vec![FromBinding {
                var: "z".into(),
                collection: Expr::ident("person"),
            }],
            where_clause: None,
        });
        let outer = Expr::Select(SelectExpr {
            distinct: false,
            projection: Box::new(Expr::Aggregate(AggFunc::Sum, Box::new(inner))),
            bindings: vec![FromBinding {
                var: "x".into(),
                collection: Expr::ident("person*"),
            }],
            where_clause: None,
        });
        assert_eq!(outer.referenced_collections(), vec!["person*", "person"]);
    }

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert_eq!(BinaryOp::Ge.symbol(), ">=");
    }

    #[test]
    fn agg_func_round_trip() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
