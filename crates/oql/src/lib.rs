//! # disco-oql
//!
//! The OQL / ODL front end of the DISCO mediator (§2 and Fig. 2 of the
//! paper).  The crate provides:
//!
//! * a lexer and recursive-descent [`parse_query`] / [`parse_statements`]
//!   parser for the OQL subset and the DISCO ODL extensions (interface
//!   definitions, `extent … of … wrapper … repository … map …;`
//!   declarations, `define … as …` views, `r0 := Repository(...)` and
//!   `w0 := WrapperPostgres()` assignments),
//! * the [`ast`] module with the expression and statement types,
//! * a pretty `printer` module that renders expressions back to OQL — required
//!   by the partial-evaluation semantics, where answers are queries,
//! * the [`resolve`] module which expands views and implicit interface
//!   extents against a [`disco_catalog::Catalog`].
//!
//! # Examples
//!
//! ```
//! use disco_oql::{parse_query, print_expr};
//!
//! let ast = parse_query("select x.name from x in person where x.salary > 10")?;
//! assert_eq!(print_expr(&ast), "select x.name from x in person where x.salary > 10");
//! # Ok::<(), disco_oql::OqlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod parser;
mod printer;
pub mod resolve;
mod token;

pub use ast::{AggFunc, BinaryOp, Expr, FromBinding, OdlAttribute, OdlStatement, SelectExpr};
pub use error::OqlError;
pub use lexer::tokenize;
pub use parser::{parse_query, parse_statements};
pub use printer::print_expr;
pub use resolve::{expand_extents, expand_views, resolve_query};
pub use token::{SpannedToken, Token};

/// Convenience result alias for OQL operations.
pub type Result<T> = std::result::Result<T, OqlError>;
