/// A lexical token of the OQL/ODL subset used by DISCO.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Token {
    /// Returns the identifier text if this token is an identifier.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the token is the given keyword
    /// (case-insensitive comparison).
    #[must_use]
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check_is_case_insensitive() {
        assert!(Token::Ident("SELECT".into()).is_keyword("select"));
        assert!(Token::Ident("select".into()).is_keyword("select"));
        assert!(!Token::Ident("selects".into()).is_keyword("select"));
        assert!(!Token::Comma.is_keyword("select"));
    }

    #[test]
    fn as_ident_only_for_identifiers() {
        assert_eq!(Token::Ident("x".into()).as_ident(), Some("x"));
        assert_eq!(Token::Int(3).as_ident(), None);
    }
}
