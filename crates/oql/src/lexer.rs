//! Hand-written lexer for the OQL/ODL subset used by DISCO.

use crate::token::{SpannedToken, Token};
use crate::OqlError;

/// Tokenises `input` into a vector of spanned tokens, terminated by
/// [`Token::Eof`].
///
/// Comments run from `//` to end of line.  String literals use double
/// quotes with `\"`, `\\` and `\n` escapes (the same escapes
/// `disco-value` produces when printing answers, so printed data
/// re-parses).
///
/// # Errors
///
/// Returns [`OqlError::Lex`] on unexpected characters or unterminated
/// strings.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, OqlError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            tokens.push(SpannedToken {
                token: $tok,
                line: $line,
                column: $col,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let tok_line = line;
        let tok_col = column;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                column += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                column = 1;
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Token::LParen, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            ')' => {
                push!(Token::RParen, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '{' => {
                push!(Token::LBrace, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '}' => {
                push!(Token::RBrace, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            ',' => {
                push!(Token::Comma, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            ';' => {
                push!(Token::Semicolon, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '.' => {
                push!(Token::Dot, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '*' => {
                push!(Token::Star, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '+' => {
                push!(Token::Plus, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '-' => {
                push!(Token::Minus, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '/' => {
                push!(Token::Slash, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            '=' => {
                push!(Token::Eq, tok_line, tok_col);
                i += 1;
                column += 1;
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Assign, tok_line, tok_col);
                    i += 2;
                    column += 2;
                } else {
                    push!(Token::Colon, tok_line, tok_col);
                    i += 1;
                    column += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::NotEq, tok_line, tok_col);
                    i += 2;
                    column += 2;
                } else {
                    return Err(OqlError::Lex {
                        message: "expected '=' after '!'".into(),
                        line,
                        column,
                    });
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Le, tok_line, tok_col);
                    i += 2;
                    column += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(Token::NotEq, tok_line, tok_col);
                    i += 2;
                    column += 2;
                } else {
                    push!(Token::Lt, tok_line, tok_col);
                    i += 1;
                    column += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Ge, tok_line, tok_col);
                    i += 2;
                    column += 2;
                } else {
                    push!(Token::Gt, tok_line, tok_col);
                    i += 1;
                    column += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                column += 1;
                let mut terminated = false;
                while i < chars.len() {
                    let ch = chars[i];
                    if ch == '\\' && i + 1 < chars.len() {
                        let esc = chars[i + 1];
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        i += 2;
                        column += 2;
                    } else if ch == '"' {
                        terminated = true;
                        i += 1;
                        column += 1;
                        break;
                    } else {
                        if ch == '\n' {
                            line += 1;
                            column = 1;
                        } else {
                            column += 1;
                        }
                        s.push(ch);
                        i += 1;
                    }
                }
                if !terminated {
                    return Err(OqlError::Lex {
                        message: "unterminated string literal".into(),
                        line: tok_line,
                        column: tok_col,
                    });
                }
                push!(Token::Str(s), tok_line, tok_col);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < chars.len()
                    && chars[i] == '.'
                    && i + 1 < chars.len()
                    && chars[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                column += i - start;
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| OqlError::Lex {
                        message: format!("invalid float literal: {text}"),
                        line: tok_line,
                        column: tok_col,
                    })?;
                    push!(Token::Float(v), tok_line, tok_col);
                } else {
                    let v = text.parse::<i64>().map_err(|_| OqlError::Lex {
                        message: format!("invalid integer literal: {text}"),
                        line: tok_line,
                        column: tok_col,
                    })?;
                    push!(Token::Int(v), tok_line, tok_col);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                column += i - start;
                push!(Token::Ident(text), tok_line, tok_col);
            }
            other => {
                return Err(OqlError::Lex {
                    message: format!("unexpected character: {other:?}"),
                    line,
                    column,
                });
            }
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line,
        column,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_the_paper_intro_query() {
        let q = "select x.name from x in person where x.salary > 10";
        let tokens = toks(q);
        assert_eq!(tokens[0], Token::Ident("select".into()));
        assert_eq!(tokens[1], Token::Ident("x".into()));
        assert_eq!(tokens[2], Token::Dot);
        assert_eq!(tokens[3], Token::Ident("name".into()));
        assert!(tokens.contains(&Token::Gt));
        assert!(tokens.contains(&Token::Int(10)));
        assert_eq!(*tokens.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""Mary" "a\"b" "line\nbreak""#),
            vec![
                Token::Str("Mary".into()),
                Token::Str("a\"b".into()),
                Token::Str("line\nbreak".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("10 2.5 0.125"),
            vec![
                Token::Int(10),
                Token::Float(2.5),
                Token::Float(0.125),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            toks("= != <> < <= > >="),
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_assignment_and_odl_punctuation() {
        let q = r#"r0 := Repository(host="rodin", name="db");"#;
        let tokens = toks(q);
        assert_eq!(tokens[1], Token::Assign);
        assert!(tokens.contains(&Token::Semicolon));
        assert!(tokens.contains(&Token::Str("rodin".into())));
    }

    #[test]
    fn lexes_star_suffix_for_recursive_extents() {
        assert_eq!(
            toks("person*"),
            vec![Token::Ident("person".into()), Token::Star, Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select // this is a comment\n 1"),
            vec![Token::Ident("select".into()), Token::Int(1), Token::Eof]
        );
    }

    #[test]
    fn position_tracking() {
        let tokens = tokenize("ab\n  cd").unwrap();
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].column), (2, 3));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(tokenize("#"), Err(OqlError::Lex { .. })));
        assert!(matches!(
            tokenize("\"unterminated"),
            Err(OqlError::Lex { .. })
        ));
        assert!(matches!(tokenize("!x"), Err(OqlError::Lex { .. })));
    }
}
