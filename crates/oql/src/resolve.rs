//! Name resolution against the mediator catalog: view expansion and
//! implicit-extent expansion.
//!
//! Two source-level rewrites happen before a query reaches the optimizer:
//!
//! 1. **View expansion** (§2.2.3) — `define name as <query>` views are
//!    substituted by their bodies wherever the view name appears in a
//!    collection position.  Views may reference other views; cycles were
//!    already rejected by the catalog, and a depth limit guards against
//!    pathological nesting.
//! 2. **Implicit-extent expansion** (§2.1, §2.2.1) — a reference to the
//!    implicit extent of an interface (e.g. `person`) is replaced by the
//!    union of the currently registered per-source extents
//!    (`union(person0, person1)`); `person*` also collects subtype
//!    extents.  This is exactly the paper's
//!    `flatten(select x.e from x in metaextent where x.interface=Person)`
//!    definition, evaluated against the meta-data.

use disco_catalog::{Catalog, NameBinding};

use crate::ast::{Expr, FromBinding, SelectExpr};
use crate::parser::parse_query;
use crate::OqlError;

/// Maximum view-inside-view nesting depth.
const MAX_VIEW_DEPTH: usize = 32;

/// Expands view references in collection positions into their bodies.
///
/// # Errors
///
/// Returns [`OqlError::ViewExpansionTooDeep`] if nesting exceeds the limit
/// and propagates parse errors from view bodies.
pub fn expand_views(expr: &Expr, catalog: &Catalog) -> Result<Expr, OqlError> {
    expand_views_depth(expr, catalog, 0)
}

fn expand_views_depth(expr: &Expr, catalog: &Catalog, depth: usize) -> Result<Expr, OqlError> {
    if depth > MAX_VIEW_DEPTH {
        return Err(OqlError::ViewExpansionTooDeep(format!("{expr:?}")));
    }
    transform_collections(expr, &mut |name| {
        match catalog.resolve(name) {
            Ok(NameBinding::View(view)) => {
                let body = parse_query(view.body())?;
                // Recursively expand views referenced by this view's body.
                let expanded = expand_views_depth(&body, catalog, depth + 1)?;
                Ok(Some(expanded))
            }
            _ => Ok(None),
        }
    })
}

/// Expands implicit interface extents (and `name*` recursive extents) into
/// unions of the registered per-source extents.
///
/// Unknown names are left untouched so that the optimizer can report a
/// precise error later.
///
/// # Errors
///
/// Propagates catalog errors other than unresolved names.
pub fn expand_extents(expr: &Expr, catalog: &Catalog) -> Result<Expr, OqlError> {
    transform_collections(expr, &mut |name| match catalog.resolve(name) {
        Ok(NameBinding::InterfaceExtent { extents, .. })
        | Ok(NameBinding::RecursiveExtent { extents, .. }) => {
            let items: Vec<Expr> = extents
                .iter()
                .map(|e| Expr::Ident(e.extent_name().to_owned()))
                .collect();
            Ok(Some(match items.len() {
                0 => Expr::BagConstruct(Vec::new()),
                1 => items.into_iter().next().expect("one item"),
                _ => Expr::Union(items),
            }))
        }
        _ => Ok(None),
    })
}

/// Applies `expand_views` then `expand_extents` — the full source-level
/// rewrite used by the mediator before algebraic compilation.
///
/// # Errors
///
/// See [`expand_views`] and [`expand_extents`].
pub fn resolve_query(expr: &Expr, catalog: &Catalog) -> Result<Expr, OqlError> {
    let expanded = expand_views(expr, catalog)?;
    expand_extents(&expanded, catalog)
}

/// Rewrites every *collection position* identifier through `replace`.
/// `replace` returns `Ok(Some(new_expr))` to substitute, `Ok(None)` to keep
/// the identifier.
fn transform_collections<F>(expr: &Expr, replace: &mut F) -> Result<Expr, OqlError>
where
    F: FnMut(&str) -> Result<Option<Expr>, OqlError>,
{
    Ok(match expr {
        Expr::Select(sel) => {
            let mut bindings = Vec::with_capacity(sel.bindings.len());
            for binding in &sel.bindings {
                let collection = match &binding.collection {
                    Expr::Ident(name) => match replace(name)? {
                        Some(new_expr) => new_expr,
                        None => binding.collection.clone(),
                    },
                    other => transform_collections(other, replace)?,
                };
                bindings.push(FromBinding {
                    var: binding.var.clone(),
                    collection,
                });
            }
            let projection = transform_collections(&sel.projection, replace)?;
            let where_clause = match &sel.where_clause {
                Some(w) => Some(Box::new(transform_collections(w, replace)?)),
                None => None,
            };
            Expr::Select(SelectExpr {
                distinct: sel.distinct,
                projection: Box::new(projection),
                bindings,
                where_clause,
            })
        }
        Expr::Union(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(match item {
                    Expr::Ident(name) => match replace(name)? {
                        Some(new_expr) => new_expr,
                        None => item.clone(),
                    },
                    other => transform_collections(other, replace)?,
                });
            }
            Expr::Union(out)
        }
        Expr::Flatten(inner) => {
            let rewritten = match inner.as_ref() {
                Expr::Ident(name) => match replace(name)? {
                    Some(new_expr) => new_expr,
                    None => (**inner).clone(),
                },
                other => transform_collections(other, replace)?,
            };
            Expr::Flatten(Box::new(rewritten))
        }
        Expr::Element(inner) => Expr::Element(Box::new(transform_collections(inner, replace)?)),
        Expr::Aggregate(func, inner) => {
            Expr::Aggregate(*func, Box::new(transform_collections(inner, replace)?))
        }
        Expr::Not(inner) => Expr::Not(Box::new(transform_collections(inner, replace)?)),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(transform_collections(left, replace)?),
            right: Box::new(transform_collections(right, replace)?),
        },
        Expr::Path(base, field) => Expr::Path(
            Box::new(transform_collections(base, replace)?),
            field.clone(),
        ),
        Expr::BagConstruct(items) => Expr::BagConstruct(
            items
                .iter()
                .map(|i| transform_collections(i, replace))
                .collect::<Result<_, _>>()?,
        ),
        Expr::ListConstruct(items) => Expr::ListConstruct(
            items
                .iter()
                .map(|i| transform_collections(i, replace))
                .collect::<Result<_, _>>()?,
        ),
        Expr::StructConstruct(fields) => Expr::StructConstruct(
            fields
                .iter()
                .map(|(n, e)| Ok((n.clone(), transform_collections(e, replace)?)))
                .collect::<Result<Vec<_>, OqlError>>()?,
        ),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter()
                .map(|i| transform_collections(i, replace))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Literal(_) | Expr::Ident(_) => expr.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_expr;
    use disco_catalog::{
        Attribute, InterfaceDef, MetaExtent, Repository, TypeRef, ViewDef, WrapperDef,
    };

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        c.define_interface(InterfaceDef::new("Student").with_supertype("Person"))
            .unwrap();
        c.add_wrapper(WrapperDef::new("w0", "relational")).unwrap();
        for r in ["r0", "r1", "r2"] {
            c.add_repository(Repository::new(r)).unwrap();
        }
        c.add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        c.add_extent(MetaExtent::new("person1", "Person", "w0", "r1"))
            .unwrap();
        c.add_extent(MetaExtent::new("student0", "Student", "w0", "r2"))
            .unwrap();
        c
    }

    #[test]
    fn implicit_extent_expands_to_union_of_sources() {
        let c = paper_catalog();
        let q = parse_query("select x.name from x in person where x.salary > 10").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        let printed = print_expr(&resolved);
        assert_eq!(
            printed,
            "select x.name from x in union(person0, person1) where x.salary > 10"
        );
    }

    #[test]
    fn recursive_extent_collects_subtype_sources() {
        let c = paper_catalog();
        let q = parse_query("select x.name from x in person*").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        let printed = print_expr(&resolved);
        assert!(printed.contains("person0"));
        assert!(printed.contains("person1"));
        assert!(printed.contains("student0"));
    }

    #[test]
    fn query_text_is_invariant_when_sources_are_added() {
        // The paper's key scalability claim for the DBA: the query does not
        // change, only the expansion grows.
        let mut c = paper_catalog();
        let q = parse_query("select x.name from x in person where x.salary > 10").unwrap();
        let before = resolve_query(&q, &c).unwrap();
        c.add_repository(Repository::new("r9")).unwrap();
        c.add_extent(MetaExtent::new("person9", "Person", "w0", "r9"))
            .unwrap();
        let after = resolve_query(&q, &c).unwrap();
        assert_ne!(before, after);
        assert!(print_expr(&after).contains("person9"));
    }

    #[test]
    fn view_bodies_are_substituted() {
        let mut c = paper_catalog();
        c.define_view(
            ViewDef::new("rich", "select x from x in person where x.salary > 100")
                .with_references(["person"]),
        )
        .unwrap();
        let q = parse_query("select y.name from y in rich").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        let printed = print_expr(&resolved);
        assert!(printed.contains("x.salary > 100"));
        assert!(printed.contains("union(person0, person1)"));
    }

    #[test]
    fn nested_views_expand_recursively() {
        let mut c = paper_catalog();
        c.define_view(
            ViewDef::new("rich", "select x from x in person where x.salary > 100")
                .with_references(["person"]),
        )
        .unwrap();
        c.define_view(
            ViewDef::new("rich_names", "select r.name from r in rich").with_references(["rich"]),
        )
        .unwrap();
        let q = parse_query("select n from n in rich_names").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        let printed = print_expr(&resolved);
        assert!(printed.contains("x.salary > 100"));
    }

    #[test]
    fn interface_with_no_sources_expands_to_empty_bag() {
        let mut c = paper_catalog();
        c.define_interface(InterfaceDef::new("Empty").with_extent_name("empty"))
            .unwrap();
        let q = parse_query("select x from x in empty").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        assert!(print_expr(&resolved).contains("bag()"));
    }

    #[test]
    fn single_source_interface_expands_without_union() {
        let c = paper_catalog();
        let q = parse_query("select s.name from s in student0").unwrap();
        // person0 etc. are already extents; no change expected.
        let resolved = resolve_query(&q, &c).unwrap();
        assert_eq!(print_expr(&resolved), "select s.name from s in student0");
    }

    #[test]
    fn unknown_names_pass_through_untouched() {
        let c = paper_catalog();
        let q = parse_query("select x from x in mystery").unwrap();
        let resolved = resolve_query(&q, &c).unwrap();
        assert_eq!(print_expr(&resolved), "select x from x in mystery");
    }
}
