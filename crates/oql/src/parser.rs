//! Recursive-descent parser for OQL queries and ODL/DISCO statements.

use disco_value::Value;

use crate::ast::{AggFunc, BinaryOp, Expr, FromBinding, OdlAttribute, OdlStatement, SelectExpr};
use crate::lexer::tokenize;
use crate::token::{SpannedToken, Token};
use crate::OqlError;

/// Parses a single OQL query expression.
///
/// # Errors
///
/// Returns [`OqlError::Lex`] / [`OqlError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// use disco_oql::parse_query;
///
/// let q = parse_query("select x.name from x in person where x.salary > 10").unwrap();
/// assert_eq!(q.referenced_collections(), vec!["person".to_owned()]);
/// ```
pub fn parse_query(input: &str) -> Result<Expr, OqlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_expr()?;
    // Allow a trailing semicolon.
    if parser.peek_is(&Token::Semicolon) {
        parser.advance();
    }
    parser.expect_eof()?;
    Ok(expr)
}

/// Parses a sequence of ODL / DISCO statements (interface definitions,
/// extent declarations, view definitions, repository and wrapper
/// assignments, or bare queries).
///
/// # Errors
///
/// Returns [`OqlError::Lex`] / [`OqlError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// use disco_oql::parse_statements;
///
/// let stmts = parse_statements(
///     "interface Person (extent person) { attribute String name; attribute Short salary; } \
///      extent person0 of Person wrapper w0 repository r0;",
/// ).unwrap();
/// assert_eq!(stmts.len(), 2);
/// ```
pub fn parse_statements(input: &str) -> Result<Vec<OdlStatement>, OqlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens);
    let mut statements = Vec::new();
    while !parser.peek_is(&Token::Eof) {
        statements.push(parser.parse_statement()?);
        while parser.peek_is(&Token::Semicolon) {
            parser.advance();
        }
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &SpannedToken {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &SpannedToken {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)]
    }

    fn peek_is(&self, token: &Token) -> bool {
        &self.peek().token == token
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().token.is_keyword(kw)
    }

    fn advance(&mut self) -> SpannedToken {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, OqlError> {
        let tok = self.peek();
        Err(OqlError::Parse {
            message: message.into(),
            line: tok.line,
            column: tok.column,
        })
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), OqlError> {
        if self.peek_is(token) {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek().token))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), OqlError> {
        if self.peek_keyword(kw) {
            self.advance();
            Ok(())
        } else {
            self.error(format!(
                "expected keyword '{kw}', found {:?}",
                self.peek().token
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, OqlError> {
        match &self.peek().token {
            Token::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), OqlError> {
        if self.peek_is(&Token::Eof) {
            Ok(())
        } else {
            self.error(format!("unexpected trailing token {:?}", self.peek().token))
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<OdlStatement, OqlError> {
        if self.peek_keyword("interface") {
            return self.parse_interface();
        }
        if self.peek_keyword("extent") {
            return self.parse_extent_decl();
        }
        if self.peek_keyword("define") {
            return self.parse_define();
        }
        // `name := Constructor(...)`
        if matches!(self.peek().token, Token::Ident(_)) && self.peek_at(1).token == Token::Assign {
            return self.parse_assignment();
        }
        let expr = self.parse_expr()?;
        Ok(OdlStatement::Query(expr))
    }

    fn parse_interface(&mut self) -> Result<OdlStatement, OqlError> {
        self.expect_keyword("interface")?;
        let name = self.expect_ident("interface name")?;
        let mut supertype = None;
        let mut extent_name = None;
        if self.peek_is(&Token::Colon) {
            self.advance();
            supertype = Some(self.expect_ident("supertype name")?);
        }
        if self.peek_is(&Token::LParen) {
            self.advance();
            self.expect_keyword("extent")?;
            extent_name = Some(self.expect_ident("extent name")?);
            self.expect(&Token::RParen, ")")?;
        }
        self.expect(&Token::LBrace, "{")?;
        let mut attributes = Vec::new();
        while !self.peek_is(&Token::RBrace) {
            self.expect_keyword("attribute")?;
            let type_name = self.expect_ident("attribute type")?;
            let attr_name = self.expect_ident("attribute name")?;
            attributes.push(OdlAttribute {
                name: attr_name,
                type_name,
            });
            if self.peek_is(&Token::Semicolon) {
                self.advance();
            }
        }
        self.expect(&Token::RBrace, "}")?;
        Ok(OdlStatement::Interface {
            name,
            supertype,
            extent_name,
            attributes,
        })
    }

    fn parse_extent_decl(&mut self) -> Result<OdlStatement, OqlError> {
        self.expect_keyword("extent")?;
        let extent = self.expect_ident("extent name")?;
        self.expect_keyword("of")?;
        let interface = self.expect_ident("interface name")?;
        self.expect_keyword("wrapper")?;
        let wrapper = self.expect_ident("wrapper name")?;
        self.expect_keyword("repository")?;
        let repository = self.expect_ident("repository name")?;
        let mut map = None;
        if self.peek_keyword("map") {
            self.advance();
            map = Some(self.capture_balanced_parens()?);
        }
        Ok(OdlStatement::Extent {
            extent,
            interface,
            wrapper,
            repository,
            map,
        })
    }

    /// Captures a balanced parenthesised token run and reconstructs its
    /// text, e.g. `((person0=personprime0),(name=n),(salary=s))`.
    fn capture_balanced_parens(&mut self) -> Result<String, OqlError> {
        if !self.peek_is(&Token::LParen) {
            return self.error("expected '(' after map");
        }
        let mut depth = 0usize;
        let mut text = String::new();
        loop {
            let tok = self.advance();
            match &tok.token {
                Token::LParen => {
                    depth += 1;
                    text.push('(');
                }
                Token::RParen => {
                    depth -= 1;
                    text.push(')');
                    if depth == 0 {
                        return Ok(text);
                    }
                }
                Token::Comma => text.push(','),
                Token::Eq => text.push('='),
                Token::Ident(s) => text.push_str(s),
                Token::Int(i) => text.push_str(&i.to_string()),
                Token::Str(s) => text.push_str(s),
                Token::Dot => text.push('.'),
                Token::Eof => return self.error("unterminated map clause"),
                other => return self.error(format!("unexpected token in map clause: {other:?}")),
            }
        }
    }

    fn parse_define(&mut self) -> Result<OdlStatement, OqlError> {
        self.expect_keyword("define")?;
        let name = self.expect_ident("view name")?;
        self.expect_keyword("as")?;
        let body = self.parse_expr()?;
        Ok(OdlStatement::Define { name, body })
    }

    fn parse_assignment(&mut self) -> Result<OdlStatement, OqlError> {
        let name = self.expect_ident("variable name")?;
        self.expect(&Token::Assign, ":=")?;
        let ctor = self.expect_ident("constructor name")?;
        self.expect(&Token::LParen, "(")?;
        let mut fields = Vec::new();
        while !self.peek_is(&Token::RParen) {
            let field = self.expect_ident("field name")?;
            self.expect(&Token::Eq, "=")?;
            let value = match self.advance().token {
                Token::Str(s) => Value::Str(s.into()),
                Token::Int(i) => Value::Int(i),
                Token::Float(x) => Value::Float(x),
                other => {
                    return self.error(format!("expected literal field value, found {other:?}"))
                }
            };
            fields.push((field, value));
            if self.peek_is(&Token::Comma) {
                self.advance();
            }
        }
        self.expect(&Token::RParen, ")")?;
        if ctor.eq_ignore_ascii_case("repository") {
            Ok(OdlStatement::RepositoryAssign { name, fields })
        } else {
            let kind = ctor
                .strip_prefix("Wrapper")
                .or_else(|| ctor.strip_suffix("Wrapper"))
                .unwrap_or(&ctor)
                .to_ascii_lowercase();
            Ok(OdlStatement::WrapperAssign { name, kind })
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, OqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, OqlError> {
        let mut left = self.parse_and()?;
        while self.peek_keyword("or") {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, OqlError> {
        let mut left = self.parse_not()?;
        while self.peek_keyword("and") {
            self.advance();
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, OqlError> {
        if self.peek_keyword("not") {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, OqlError> {
        let left = self.parse_additive()?;
        let op = match self.peek().token {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::Le => Some(BinaryOp::Le),
            Token::Gt => Some(BinaryOp::Gt),
            Token::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, OqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().token {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, OqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().token {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => break,
            };
            // `x * y` needs an operand after the star; a star followed by
            // something that cannot start an expression is a recursive
            // extent marker handled in collection position, so leave it.
            if op == BinaryOp::Mul && !self.token_starts_expr(&self.peek_at(1).token) {
                break;
            }
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn token_starts_expr(&self, token: &Token) -> bool {
        match token {
            Token::Ident(name) => {
                // Keywords that cannot begin an operand.
                !["where", "from", "and", "or", "in", "as"]
                    .iter()
                    .any(|kw| name.eq_ignore_ascii_case(kw))
            }
            Token::Int(_) | Token::Float(_) | Token::Str(_) | Token::LParen | Token::Minus => true,
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, OqlError> {
        if self.peek_is(&Token::Minus) {
            self.advance();
            // A minus directly before a numeric literal is a negative
            // literal (so printed answers containing negative numbers
            // re-parse to the same AST); otherwise it is `0 - e`.
            match self.peek().token.clone() {
                Token::Int(i) => {
                    self.advance();
                    return Ok(Expr::literal(-i));
                }
                Token::Float(x) => {
                    self.advance();
                    return Ok(Expr::literal(-x));
                }
                _ => {}
            }
            let inner = self.parse_unary()?;
            return Ok(Expr::binary(BinaryOp::Sub, Expr::literal(0i64), inner));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, OqlError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.peek_is(&Token::Dot) {
                self.advance();
                let field = self.expect_ident("field name")?;
                expr = Expr::Path(Box::new(expr), field);
            } else if self.peek_is(&Token::Star) && matches!(expr, Expr::Ident(_)) {
                // `person*` — recursive extent.  Only treat the star as a
                // suffix when what follows cannot be a multiplication
                // operand.
                if !self.token_starts_expr(&self.peek_at(1).token) {
                    self.advance();
                    if let Expr::Ident(name) = expr {
                        expr = Expr::Ident(format!("{name}*"));
                    }
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, OqlError> {
        match self.peek().token.clone() {
            Token::Int(i) => {
                self.advance();
                Ok(Expr::literal(i))
            }
            Token::Float(x) => {
                self.advance();
                Ok(Expr::literal(x))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::literal(s))
            }
            Token::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen, ")")?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("select") {
                    return self.parse_select();
                }
                if name.eq_ignore_ascii_case("union") {
                    return self.parse_named_collection("union");
                }
                if name.eq_ignore_ascii_case("bag") {
                    return self.parse_named_collection("bag");
                }
                if name.eq_ignore_ascii_case("list") {
                    return self.parse_named_collection("list");
                }
                if name.eq_ignore_ascii_case("struct") {
                    return self.parse_struct();
                }
                if name.eq_ignore_ascii_case("flatten") {
                    self.advance();
                    self.expect(&Token::LParen, "(")?;
                    let inner = self.parse_collection_expr()?;
                    self.expect(&Token::RParen, ")")?;
                    return Ok(Expr::Flatten(Box::new(inner)));
                }
                if name.eq_ignore_ascii_case("element") {
                    self.advance();
                    self.expect(&Token::LParen, "(")?;
                    let inner = self.parse_expr()?;
                    self.expect(&Token::RParen, ")")?;
                    return Ok(Expr::Element(Box::new(inner)));
                }
                if name.eq_ignore_ascii_case("nil") || name.eq_ignore_ascii_case("null") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    self.advance();
                    return Ok(Expr::literal(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.advance();
                    return Ok(Expr::literal(false));
                }
                if let Some(agg) = AggFunc::from_name(&name) {
                    if self.peek_at(1).token == Token::LParen {
                        self.advance();
                        self.advance();
                        let inner = self.parse_expr()?;
                        self.expect(&Token::RParen, ")")?;
                        return Ok(Expr::Aggregate(agg, Box::new(inner)));
                    }
                }
                self.advance();
                // Generic call `f(arg, ...)`.
                if self.peek_is(&Token::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    while !self.peek_is(&Token::RParen) {
                        args.push(self.parse_expr()?);
                        if self.peek_is(&Token::Comma) {
                            self.advance();
                        }
                    }
                    self.expect(&Token::RParen, ")")?;
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            other => self.error(format!("unexpected token {other:?}")),
        }
    }

    /// Parses `union(...)`, `bag(...)`, `list(...)`.
    fn parse_named_collection(&mut self, kind: &str) -> Result<Expr, OqlError> {
        self.advance(); // keyword
        self.expect(&Token::LParen, "(")?;
        let mut items = Vec::new();
        while !self.peek_is(&Token::RParen) {
            items.push(self.parse_collection_expr()?);
            if self.peek_is(&Token::Comma) {
                self.advance();
            }
        }
        self.expect(&Token::RParen, ")")?;
        Ok(match kind {
            "union" => Expr::Union(items),
            "bag" => Expr::BagConstruct(items),
            _ => Expr::ListConstruct(items),
        })
    }

    fn parse_struct(&mut self) -> Result<Expr, OqlError> {
        self.advance(); // struct
        self.expect(&Token::LParen, "(")?;
        let mut fields = Vec::new();
        while !self.peek_is(&Token::RParen) {
            let name = self.expect_ident("struct field name")?;
            self.expect(&Token::Colon, ":")?;
            let value = self.parse_expr()?;
            fields.push((name, value));
            if self.peek_is(&Token::Comma) {
                self.advance();
            }
        }
        self.expect(&Token::RParen, ")")?;
        Ok(Expr::StructConstruct(fields))
    }

    fn parse_select(&mut self) -> Result<Expr, OqlError> {
        self.expect_keyword("select")?;
        let distinct = if self.peek_keyword("distinct") {
            self.advance();
            true
        } else {
            false
        };
        let projection = self.parse_expr()?;
        self.expect_keyword("from")?;
        let mut bindings = Vec::new();
        loop {
            let var = self.expect_ident("range variable")?;
            self.expect_keyword("in")?;
            let collection = self.parse_collection_expr()?;
            bindings.push(FromBinding { var, collection });
            // The paper writes both `from x in a, y in b` and
            // `from x in a and y in b`; accept a comma or `and` followed by
            // another binding (identifier then `in`).  A comma not followed
            // by a binding belongs to an enclosing constructor
            // (e.g. `bag(select …, select …)`).
            if self.peek_is(&Token::Comma)
                && matches!(self.peek_at(1).token, Token::Ident(_))
                && self.peek_at(2).token.is_keyword("in")
            {
                self.advance();
                continue;
            }
            if self.peek_keyword("and")
                && matches!(self.peek_at(1).token, Token::Ident(_))
                && self.peek_at(2).token.is_keyword("in")
            {
                self.advance();
                continue;
            }
            break;
        }
        let where_clause = if self.peek_keyword("where") {
            self.advance();
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        Ok(Expr::Select(SelectExpr {
            distinct,
            projection: Box::new(projection),
            bindings,
            where_clause,
        }))
    }

    /// Parses an expression in *collection position* (after `in`, or as an
    /// argument of `union`/`bag`/`flatten`), where a trailing `*` on an
    /// identifier denotes the recursive extent (`person*`).
    ///
    /// Collection expressions never contain top-level binary operators
    /// (`and`, comparison, arithmetic) — restricting to postfix level keeps
    /// the `from x in a and y in b` and `bag(select …, select …)` forms of
    /// the paper unambiguous.
    fn parse_collection_expr(&mut self) -> Result<Expr, OqlError> {
        let expr = self.parse_unary()?;
        if self.peek_is(&Token::Star) {
            if let Expr::Ident(name) = &expr {
                self.advance();
                return Ok(Expr::Ident(format!("{name}*")));
            }
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_intro_query() {
        let q = parse_query("select x.name from x in person where x.salary > 10").unwrap();
        match q {
            Expr::Select(sel) => {
                assert!(!sel.distinct);
                assert_eq!(sel.bindings.len(), 1);
                assert_eq!(sel.bindings[0].var, "x");
                assert_eq!(sel.bindings[0].collection, Expr::ident("person"));
                assert!(sel.where_clause.is_some());
                assert_eq!(*sel.projection, Expr::ident("x").path("name"));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_union_of_extents() {
        let q = parse_query("select x.name from x in union(person0, person1) where x.salary > 10")
            .unwrap();
        match q {
            Expr::Select(sel) => match &sel.bindings[0].collection {
                Expr::Union(items) => assert_eq!(items.len(), 2),
                other => panic!("expected union, got {other:?}"),
            },
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_partial_answer_shape() {
        // The §1.3 partial answer: a union of a residual query and data.
        let q =
            parse_query("union(select y.name from y in person0 where y.salary > 10, bag(\"Sam\"))")
                .unwrap();
        match q {
            Expr::Union(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], Expr::Select(_)));
                assert_eq!(items[1], Expr::BagConstruct(vec![Expr::literal("Sam")]));
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_projection_and_two_bindings() {
        // The §2.2.3 `double` view body.
        let q = parse_query(
            "select struct(name: x.name, salary: x.salary + y.salary) \
             from x in person0 and y in person1 where x.id = y.id",
        )
        .unwrap();
        match q {
            Expr::Select(sel) => {
                assert_eq!(sel.bindings.len(), 2);
                match sel.projection.as_ref() {
                    Expr::StructConstruct(fields) => {
                        assert_eq!(fields.len(), 2);
                        assert_eq!(fields[0].0, "name");
                        assert!(matches!(
                            fields[1].1,
                            Expr::Binary {
                                op: BinaryOp::Add,
                                ..
                            }
                        ));
                    }
                    other => panic!("expected struct, got {other:?}"),
                }
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_aggregate_over_nested_select_and_star_extent() {
        // The §2.2.3 `multiple` view body.
        let q = parse_query(
            "select struct(name: x.name, salary: sum(select z.salary from z in person where x.id = z.id)) \
             from x in person*",
        )
        .unwrap();
        match q {
            Expr::Select(sel) => {
                assert_eq!(sel.bindings[0].collection, Expr::ident("person*"));
                match sel.projection.as_ref() {
                    Expr::StructConstruct(fields) => {
                        assert!(matches!(fields[1].1, Expr::Aggregate(AggFunc::Sum, _)));
                    }
                    other => panic!("expected struct, got {other:?}"),
                }
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn star_is_still_multiplication_in_predicates() {
        let q = parse_query("select x from x in r where x.a * 2 > 10").unwrap();
        match q {
            Expr::Select(sel) => {
                let w = sel.where_clause.unwrap();
                match *w {
                    Expr::Binary {
                        op: BinaryOp::Gt,
                        left,
                        ..
                    } => {
                        assert!(matches!(
                            *left,
                            Expr::Binary {
                                op: BinaryOp::Mul,
                                ..
                            }
                        ));
                    }
                    other => panic!("expected >, got {other:?}"),
                }
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_flatten_of_meta_extent_query() {
        // The §2.1 implicit-extent definition.
        let q = parse_query("flatten(select x.e from x in metaextent where x.interface = Person)")
            .unwrap();
        assert!(matches!(q, Expr::Flatten(_)));
    }

    #[test]
    fn parses_bag_constructor_of_selects() {
        // The §2.3 `personnew` view body.
        let q = parse_query(
            "bag(select struct(name: x.name, salary: x.salary) from x in person, \
                 select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)",
        )
        .unwrap();
        match q {
            Expr::BagConstruct(items) => {
                assert_eq!(items.len(), 2);
                assert!(items.iter().all(|i| matches!(i, Expr::Select(_))));
            }
            other => panic!("expected bag, got {other:?}"),
        }
    }

    #[test]
    fn parses_logical_connectives_with_precedence() {
        let q =
            parse_query("select x from x in r where x.a > 1 and x.b < 2 or not x.c = 3").unwrap();
        match q {
            Expr::Select(sel) => {
                let w = *sel.where_clause.unwrap();
                // Top level must be `or`.
                assert!(matches!(
                    w,
                    Expr::Binary {
                        op: BinaryOp::Or,
                        ..
                    }
                ));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_odl_interface_and_extent_statements() {
        let stmts = parse_statements(
            "interface Person (extent person) { attribute String name; attribute Short salary; }\n\
             interface Student:Person { }\n\
             extent person0 of Person wrapper w0 repository r0;\n\
             extent personprime0 of PersonPrime wrapper w0 repository r0 \
                 map ((person0=personprime0),(name=n),(salary=s));",
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[0] {
            OdlStatement::Interface {
                name,
                extent_name,
                attributes,
                supertype,
            } => {
                assert_eq!(name, "Person");
                assert_eq!(extent_name.as_deref(), Some("person"));
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].type_name, "String");
                assert!(supertype.is_none());
            }
            other => panic!("expected interface, got {other:?}"),
        }
        match &stmts[1] {
            OdlStatement::Interface { supertype, .. } => {
                assert_eq!(supertype.as_deref(), Some("Person"));
            }
            other => panic!("expected interface, got {other:?}"),
        }
        match &stmts[3] {
            OdlStatement::Extent { map, extent, .. } => {
                assert_eq!(extent, "personprime0");
                assert_eq!(
                    map.as_deref(),
                    Some("((person0=personprime0),(name=n),(salary=s))")
                );
            }
            other => panic!("expected extent, got {other:?}"),
        }
    }

    #[test]
    fn parses_repository_and_wrapper_assignments() {
        let stmts = parse_statements(
            "r0 := Repository(host=\"rodin\", name=\"db\", address=\"123.45.6.7\");\n\
             w0 := WrapperPostgres();",
        )
        .unwrap();
        match &stmts[0] {
            OdlStatement::RepositoryAssign { name, fields } => {
                assert_eq!(name, "r0");
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[0].0, "host");
                assert_eq!(fields[0].1, Value::Str("rodin".into()));
            }
            other => panic!("expected repository assign, got {other:?}"),
        }
        match &stmts[1] {
            OdlStatement::WrapperAssign { name, kind } => {
                assert_eq!(name, "w0");
                assert_eq!(kind, "postgres");
            }
            other => panic!("expected wrapper assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_define_statement() {
        let stmts = parse_statements(
            "define double as select struct(name: x.name, salary: x.salary + y.salary) \
             from x in person0 and y in person1 where x.id = y.id",
        )
        .unwrap();
        match &stmts[0] {
            OdlStatement::Define { name, body } => {
                assert_eq!(name, "double");
                assert!(matches!(body, Expr::Select(_)));
            }
            other => panic!("expected define, got {other:?}"),
        }
    }

    #[test]
    fn bare_query_statement() {
        let stmts = parse_statements("select x.name from x in person").unwrap();
        assert!(matches!(stmts[0], OdlStatement::Query(_)));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_query("select from").unwrap_err();
        assert!(matches!(err, OqlError::Parse { .. }));
        let err = parse_query("select x.name from x in").unwrap_err();
        assert!(matches!(err, OqlError::Parse { .. }));
        let err = parse_query("select x from x in r where x.a >").unwrap_err();
        assert!(matches!(err, OqlError::Parse { .. }));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_query("select x from x in r extra").is_err());
    }

    #[test]
    fn unary_minus_and_literals() {
        let q = parse_query("select x from x in r where x.a > -5").unwrap();
        match q {
            Expr::Select(sel) => {
                let w = *sel.where_clause.unwrap();
                match w {
                    Expr::Binary { right, .. } => {
                        assert_eq!(*right, Expr::literal(-5i64));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Negating a non-literal still means subtraction from zero.
        let q = parse_query("select x from x in r where -x.a > 5").unwrap();
        match q {
            Expr::Select(sel) => {
                let w = *sel.where_clause.unwrap();
                match w {
                    Expr::Binary { left, .. } => {
                        assert!(matches!(
                            *left,
                            Expr::Binary {
                                op: BinaryOp::Sub,
                                ..
                            }
                        ));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_query("nil").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse_query("true").unwrap(), Expr::literal(true));
    }

    #[test]
    fn distinct_and_element() {
        let q = parse_query("select distinct x.name from x in person").unwrap();
        match q {
            Expr::Select(sel) => assert!(sel.distinct),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_query("element(select x from x in r)").unwrap(),
            Expr::Element(_)
        ));
    }

    #[test]
    fn generic_function_call_is_preserved() {
        let q = parse_query("reconcile(x, y)").unwrap();
        match q {
            Expr::Call(name, args) => {
                assert_eq!(name, "reconcile");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
