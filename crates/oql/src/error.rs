use std::fmt;

/// Errors produced while lexing, parsing or resolving OQL/ODL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OqlError {
    /// An unexpected character was met while lexing.
    Lex {
        /// Human-readable description.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
    },
    /// A name (extent, view, variable) could not be resolved.
    Unresolved(String),
    /// View expansion exceeded the nesting limit (cyclic or too deep).
    ViewExpansionTooDeep(String),
    /// A catalog error surfaced while resolving names.
    Catalog(disco_catalog::CatalogError),
}

impl fmt::Display for OqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OqlError::Lex {
                message,
                line,
                column,
            } => write!(f, "lex error at {line}:{column}: {message}"),
            OqlError::Parse {
                message,
                line,
                column,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            OqlError::Unresolved(name) => write!(f, "unresolved name: {name}"),
            OqlError::ViewExpansionTooDeep(name) => {
                write!(f, "view expansion too deep (cycle?) at: {name}")
            }
            OqlError::Catalog(err) => write!(f, "catalog error: {err}"),
        }
    }
}

impl std::error::Error for OqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OqlError::Catalog(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_catalog::CatalogError> for OqlError {
    fn from(err: disco_catalog::CatalogError) -> Self {
        OqlError::Catalog(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = OqlError::Parse {
            message: "expected identifier".into(),
            line: 2,
            column: 7,
        };
        assert_eq!(e.to_string(), "parse error at 2:7: expected identifier");
    }

    #[test]
    fn catalog_errors_convert() {
        let e: OqlError = disco_catalog::CatalogError::UnknownExtent("p0".into()).into();
        assert!(e.to_string().contains("unknown extent"));
    }
}
