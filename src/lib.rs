//! # disco
//!
//! Facade crate for the Rust reproduction of **DISCO** — *Scaling
//! Heterogeneous Databases and the Design of Disco* (Tomasic, Raschid,
//! Valduriez; INRIA RR-2704, ICDCS 1996).
//!
//! DISCO is a distributed mediator architecture for querying a large and
//! changing collection of heterogeneous, autonomous data sources.  This
//! workspace implements the complete system described by the paper:
//!
//! * [`value`] — the OQL value model (bags, structs, literals),
//! * [`catalog`] — the ODMG-style mediator schema with DISCO's extensions
//!   (multiple extents per interface, `MetaExtent`, repositories, wrappers,
//!   local transformation maps, views, subtyping),
//! * [`oql`] — the OQL/ODL parser and pretty-printer,
//! * [`algebra`] — the logical algebra with `submit`, transformation rules,
//!   wrapper capability grammars and the physical algebra with `exec`,
//! * [`source`] — simulated heterogeneous data sources plus a
//!   latency/availability network simulator,
//! * [`wrapper`] — the wrapper interface and concrete wrappers,
//! * [`optimizer`] — OQL compilation, capability-constrained rewriting, and
//!   the self-calibrating cost model,
//! * [`runtime`] — the parallel executor with deadline-based partial
//!   evaluation (answers that are themselves queries),
//! * [`core`] — the [`core::Mediator`] facade tying everything together.
//!
//! # Quickstart
//!
//! ```
//! use disco::core::Mediator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mediator = Mediator::new("demo");
//!
//! // Register two person sources exactly as in the paper's introduction.
//! mediator.register_person_demo()?;
//!
//! let answer = mediator.query("select x.name from x in person where x.salary > 10")?;
//! assert!(answer.is_complete());
//! assert_eq!(answer.data().len(), 2);
//! # Ok(())
//! # }
//! ```

pub use disco_algebra as algebra;
pub use disco_catalog as catalog;
pub use disco_core as core;
pub use disco_optimizer as optimizer;
pub use disco_oql as oql;
pub use disco_runtime as runtime;
pub use disco_source as source;
pub use disco_value as value;
pub use disco_wrapper as wrapper;
