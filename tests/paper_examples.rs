//! Integration tests reproducing, end to end, every worked example in the
//! DISCO paper (§1.2, §2.1, §2.2.1–2.2.3, §2.3).
//!
//! Each test builds the paper's schema and data through the public
//! `Mediator` API and checks the exact answers the paper gives.

use std::sync::Arc;

use disco::core::{
    Attribute, CapabilitySet, InterfaceDef, Mediator, MetaExtent, NetworkProfile, Repository,
    Table, TypeMap, TypeRef, Value,
};
use disco::source::{RelationalStore, SimulatedLink};
use disco::wrapper::RelationalWrapper;

/// Builds the running example: Person interface, person0 = {Mary, 200},
/// person1 = {Sam, 50}, with ids so the view examples can join.
fn paper_mediator() -> Mediator {
    let mut m = Mediator::new("paper");
    m.define_interface(
        InterfaceDef::new("Person")
            .with_extent_name("person")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    let mut t0 = Table::new("person0", ["id", "name", "salary"]);
    t0.insert_values([
        ("id", Value::Int(1)),
        ("name", Value::from("Mary")),
        ("salary", Value::Int(200)),
    ])
    .unwrap();
    let mut t1 = Table::new("person1", ["id", "name", "salary"]);
    t1.insert_values([
        ("id", Value::Int(1)),
        ("name", Value::from("Sam")),
        ("salary", Value::Int(50)),
    ])
    .unwrap();
    m.add_relational_source(
        "person0",
        "Person",
        "r0",
        t0,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    m.add_relational_source(
        "person1",
        "Person",
        "r1",
        t1,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    m
}

#[test]
fn section_1_2_intro_query_over_the_implicit_extent() {
    let m = paper_mediator();
    let answer = m
        .query("select x.name from x in person where x.salary > 10")
        .unwrap();
    assert!(answer.is_complete());
    assert_eq!(
        *answer.data(),
        [Value::from("Mary"), Value::from("Sam")]
            .into_iter()
            .collect()
    );
}

#[test]
fn section_2_1_single_extent_query_returns_only_mary() {
    let m = paper_mediator();
    let answer = m
        .query("select x.name from x in person0 where x.salary > 10")
        .unwrap();
    assert_eq!(*answer.data(), [Value::from("Mary")].into_iter().collect());
    // The explicit union form of §2.1 gives both.
    let answer = m
        .query("select x.name from x in union(person0, person1) where x.salary > 10")
        .unwrap();
    assert_eq!(answer.data().len(), 2);
}

#[test]
fn section_2_2_1_subtyping_and_recursive_extents() {
    let mut m = paper_mediator();
    m.define_interface(InterfaceDef::new("Student").with_supertype("Person"))
        .unwrap();
    let mut s0 = Table::new("student0", ["id", "name", "salary"]);
    s0.insert_values([
        ("id", Value::Int(7)),
        ("name", Value::from("Nico")),
        ("salary", Value::Int(15)),
    ])
    .unwrap();
    m.add_relational_source(
        "student0",
        "Student",
        "r2",
        s0,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();

    // `person` still contains only the two person extents…
    let person = m
        .query("select x.name from x in person where x.salary > 10")
        .unwrap();
    assert_eq!(person.data().len(), 2);
    // …while `person*` recursively includes the student extent.
    let person_star = m
        .query("select x.name from x in person* where x.salary > 10")
        .unwrap();
    assert_eq!(person_star.data().len(), 3);
    assert!(person_star.data().contains(&Value::from("Nico")));
}

#[test]
fn section_2_2_2_type_mapping_with_personprime() {
    let mut m = paper_mediator();
    // The PersonPrime mediator type has attributes n / s that do not match
    // the source type.
    m.define_interface(
        InterfaceDef::new("PersonPrime")
            .with_extent_name("personprime")
            .with_attribute(Attribute::new("n", TypeRef::String))
            .with_attribute(Attribute::new("s", TypeRef::Int)),
    )
    .unwrap();
    // Without a map, querying the conflicting extent is a run-time error.
    let store = Arc::new(RelationalStore::new());
    let mut table = Table::new("person0", ["id", "name", "salary"]);
    table
        .insert_values([
            ("id", Value::Int(1)),
            ("name", Value::from("Mary")),
            ("salary", Value::Int(200)),
        ])
        .unwrap();
    store.put_table(table);
    let link = Arc::new(SimulatedLink::new("r5", NetworkProfile::fast(), 9));
    m.register_repository(Repository::new("r5")).unwrap();
    m.register_wrapper(Arc::new(RelationalWrapper::new(
        "w5",
        Arc::clone(&store),
        Arc::clone(&link),
    )))
    .unwrap();
    m.register_extent(
        MetaExtent::new("personprime_broken", "PersonPrime", "w5", "r5").with_map(
            // Maps only the relation name, not the attributes: the type
            // conflict remains and must surface as an error.
            TypeMap::builder()
                .relation("person0", "personprime_broken")
                .build()
                .unwrap(),
        ),
    )
    .unwrap();
    let err = m
        .query("select x.n from x in personprime_broken")
        .unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("type conflict")
            || message.contains("unknown attribute")
            || message.contains("no such field"),
        "unexpected error: {message}"
    );

    // With the paper's map the conflict is resolved by the DBA.
    m.register_extent(
        MetaExtent::new("personprime0", "PersonPrime", "w5", "r5").with_map(
            TypeMap::builder()
                .relation("person0", "personprime0")
                .attribute("name", "n")
                .attribute("salary", "s")
                .build()
                .unwrap(),
        ),
    )
    .unwrap();
    let answer = m
        .query("select x.n from x in personprime0 where x.s > 10")
        .unwrap();
    assert_eq!(*answer.data(), [Value::from("Mary")].into_iter().collect());
}

#[test]
fn section_2_2_3_double_view_reconciles_salaries() {
    let mut m = paper_mediator();
    m.define_view(
        "double",
        "select struct(name: x.name, salary: x.salary + y.salary) \
         from x in person0, y in person1 where x.id = y.id",
    )
    .unwrap();
    let answer = m.query("select d from d in double").unwrap();
    assert_eq!(answer.data().len(), 1);
    let row = answer.data().iter().next().unwrap().as_struct().unwrap();
    assert_eq!(row.field("name").unwrap(), &Value::from("Mary"));
    assert_eq!(row.field("salary").unwrap(), &Value::Int(250));
}

#[test]
fn section_2_2_3_multiple_view_aggregates_over_person_star() {
    let mut m = paper_mediator();
    m.define_interface(InterfaceDef::new("Student").with_supertype("Person"))
        .unwrap();
    let mut s0 = Table::new("student0", ["id", "name", "salary"]);
    s0.insert_values([
        ("id", Value::Int(1)),
        ("name", Value::from("Mary-student")),
        ("salary", Value::Int(25)),
    ])
    .unwrap();
    m.add_relational_source(
        "student0",
        "Student",
        "r4",
        s0,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    m.define_view(
        "multiple",
        "select struct(name: x.name, salary: sum(select z.salary from z in person* where x.id = z.id)) \
         from x in person0",
    )
    .unwrap();
    let answer = m.query("select v from v in multiple").unwrap();
    assert_eq!(answer.data().len(), 1);
    let row = answer.data().iter().next().unwrap().as_struct().unwrap();
    // Mary's id=1 appears in person0 (200), person1 (50) and student0 (25):
    // the new student source is automatically summed in, as §2.2.3 claims.
    assert_eq!(row.field("salary").unwrap(), &Value::Int(275));
}

#[test]
fn section_2_3_personnew_view_over_dissimilar_structures() {
    let mut m = paper_mediator();
    m.define_interface(
        InterfaceDef::new("PersonTwo")
            .with_extent_name("persontwo")
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("regular", TypeRef::Int))
            .with_attribute(Attribute::new("consult", TypeRef::Int)),
    )
    .unwrap();
    let mut t = Table::new("persontwo0", ["name", "regular", "consult"]);
    t.insert_values([
        ("name", Value::from("Yannis")),
        ("regular", Value::Int(100)),
        ("consult", Value::Int(40)),
    ])
    .unwrap();
    m.add_relational_source(
        "persontwo0",
        "PersonTwo",
        "r5",
        t,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    m.define_view(
        "personnew",
        "bag(select struct(name: x.name, salary: x.salary) from x in person, \
             select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)",
    )
    .unwrap();
    let answer = m.query("select p.salary from p in personnew").unwrap();
    assert_eq!(answer.data().len(), 3);
    assert!(
        answer.data().contains(&Value::Int(140)),
        "Yannis' reconciled salary"
    );
    assert!(answer.data().contains(&Value::Int(200)));
    assert!(answer.data().contains(&Value::Int(50)));
}

#[test]
fn section_2_1_metadata_grows_with_each_extent_declaration() {
    let m = paper_mediator();
    // The meta-extent collection records every registered source with its
    // interface, wrapper and repository — the paper's MetaExtent type.
    let metas: Vec<_> = m.catalog().meta_extents().collect();
    assert_eq!(metas.len(), 2);
    assert!(metas.iter().all(|e| e.interface() == "Person"));
    let repos: Vec<_> = metas.iter().map(|e| e.repository()).collect();
    assert!(repos.contains(&"r0") && repos.contains(&"r1"));
}
