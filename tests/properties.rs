//! Property-based integration tests: for randomly generated federations
//! and data, the mediator's answers must equal a naive in-memory
//! computation, must not depend on wrapper capabilities, and partial
//! answers followed by resubmission must converge to the full answer.
//!
//! Cases are generated with a seeded deterministic RNG (the offline `rand`
//! shim) rather than proptest — the build environment has no crates.io
//! access.  Every failure reproduces from its printed seed.

use disco::core::{
    Availability, CapabilitySet, InterfaceDef, Mediator, NetworkProfile, Table, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic person row.
#[derive(Debug, Clone)]
struct PersonRow {
    name: String,
    salary: i64,
}

fn random_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..9usize);
    (0..len)
        .map(|_| char::from(b'a' + u8::try_from(rng.gen_range(0..26u32)).unwrap()))
        .collect()
}

fn random_federation(rng: &mut StdRng) -> Vec<Vec<PersonRow>> {
    let sources = rng.gen_range(1..5usize);
    (0..sources)
        .map(|_| {
            let rows = rng.gen_range(0..12usize);
            (0..rows)
                .map(|_| PersonRow {
                    name: random_name(rng),
                    salary: rng.gen_range(0..500i64),
                })
                .collect()
        })
        .collect()
}

fn person_interface() -> InterfaceDef {
    InterfaceDef::new("Person")
        .with_extent_name("person")
        .with_attribute(disco::catalog::Attribute::new(
            "name",
            disco::catalog::TypeRef::String,
        ))
        .with_attribute(disco::catalog::Attribute::new(
            "salary",
            disco::catalog::TypeRef::Int,
        ))
}

fn build_mediator(sources: &[Vec<PersonRow>], caps: CapabilitySet) -> Mediator {
    let mut m = Mediator::new("prop");
    m.define_interface(person_interface()).unwrap();
    for (i, rows) in sources.iter().enumerate() {
        let mut table = Table::new(format!("person{i}"), ["name", "salary"]);
        for row in rows {
            table
                .insert_values([
                    ("name", Value::from(row.name.clone())),
                    ("salary", Value::Int(row.salary)),
                ])
                .unwrap();
        }
        m.add_relational_source(
            &format!("person{i}"),
            "Person",
            &format!("r{i}"),
            table,
            NetworkProfile::fast(),
            caps.clone(),
        )
        .unwrap();
    }
    m
}

/// The reference answer computed naively in memory.
fn reference_answer(sources: &[Vec<PersonRow>], threshold: i64) -> Vec<String> {
    let mut names: Vec<String> = sources
        .iter()
        .flatten()
        .filter(|r| r.salary > threshold)
        .map(|r| r.name.clone())
        .collect();
    names.sort();
    names
}

fn answer_names(answer: &disco::runtime::Answer) -> Vec<String> {
    let mut names: Vec<String> = answer
        .data()
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    names.sort();
    names
}

const CASES: u64 = 24;

#[test]
fn mediator_answers_match_naive_evaluation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let sources = random_federation(&mut rng);
        let threshold = rng.gen_range(0..500i64);
        let m = build_mediator(&sources, CapabilitySet::full());
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let answer = m.query(&query).unwrap();
        assert!(answer.is_complete(), "seed {seed}");
        assert_eq!(
            answer_names(&answer),
            reference_answer(&sources, threshold),
            "seed {seed}"
        );
    }
}

#[test]
fn answers_do_not_depend_on_wrapper_capabilities() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x10_0000 + seed);
        let sources = random_federation(&mut rng);
        let threshold = rng.gen_range(0..500i64);
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let full = build_mediator(&sources, CapabilitySet::full());
        let minimal = build_mediator(&sources, CapabilitySet::get_only());
        let a = full.query(&query).unwrap();
        let b = minimal.query(&query).unwrap();
        assert_eq!(a.data(), b.data(), "seed {seed}");
    }
}

#[test]
fn partial_plus_resubmission_equals_full_answer() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x20_0000 + seed);
        let sources = random_federation(&mut rng);
        let threshold = rng.gen_range(0..500i64);
        let down_index = rng.gen_range(0..4usize);

        // Re-build the mediator keeping the per-source links.
        let mut m = Mediator::new("prop");
        m.define_interface(person_interface()).unwrap();
        let mut links = Vec::new();
        for (i, rows) in sources.iter().enumerate() {
            let mut table = Table::new(format!("person{i}"), ["name", "salary"]);
            for row in rows {
                table
                    .insert_values([
                        ("name", Value::from(row.name.clone())),
                        ("salary", Value::Int(row.salary)),
                    ])
                    .unwrap();
            }
            links.push(
                m.add_relational_source(
                    &format!("person{i}"),
                    "Person",
                    &format!("r{i}"),
                    table,
                    NetworkProfile::fast(),
                    CapabilitySet::full(),
                )
                .unwrap(),
            );
        }
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let full = m.query(&query).unwrap();

        let down = down_index % links.len();
        links[down].set_availability(Availability::Unavailable);
        let partial = m.query(&query).unwrap();
        // Partial data never invents values.
        for value in partial.data() {
            assert!(full.data().contains(value), "seed {seed}");
        }
        links[down].set_availability(Availability::Available);
        let recovered = m.resubmit(&partial).unwrap();
        assert!(recovered.is_complete(), "seed {seed}");
        assert_eq!(answer_names(&recovered), answer_names(&full), "seed {seed}");
    }
}

#[test]
fn aggregates_match_naive_sums() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x30_0000 + seed);
        let sources = random_federation(&mut rng);
        let m = build_mediator(&sources, CapabilitySet::full());
        let expected: i64 = sources.iter().flatten().map(|r| r.salary).sum();
        let answer = m.query("sum(select x.salary from x in person)").unwrap();
        let got = answer.data().iter().next().unwrap().as_int().unwrap();
        assert_eq!(got, expected, "seed {seed}");
        let count = m.query("count(select x.name from x in person)").unwrap();
        let total: i64 = sources.iter().map(|s| s.len() as i64).sum();
        assert_eq!(
            count.data().iter().next().unwrap().as_int().unwrap(),
            total,
            "seed {seed}"
        );
    }
}
