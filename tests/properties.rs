//! Property-based integration tests: for randomly generated federations
//! and data, the mediator's answers must equal a naive in-memory
//! computation, must not depend on wrapper capabilities, and partial
//! answers followed by resubmission must converge to the full answer.

use disco::core::{
    Availability, CapabilitySet, InterfaceDef, Mediator, NetworkProfile, Table, Value,
};
use proptest::prelude::*;

/// One synthetic person row.
#[derive(Debug, Clone)]
struct PersonRow {
    name: String,
    salary: i64,
}

fn person_row_strategy() -> impl Strategy<Value = PersonRow> {
    ("[a-z]{1,8}", 0i64..500).prop_map(|(name, salary)| PersonRow { name, salary })
}

/// A federation description: a list of sources, each a list of rows.
fn federation_strategy() -> impl Strategy<Value = Vec<Vec<PersonRow>>> {
    prop::collection::vec(prop::collection::vec(person_row_strategy(), 0..12), 1..5)
}

fn build_mediator(sources: &[Vec<PersonRow>], caps: CapabilitySet) -> Mediator {
    let mut m = Mediator::new("prop");
    m.define_interface(
        InterfaceDef::new("Person")
            .with_extent_name("person")
            .with_attribute(disco::catalog::Attribute::new(
                "name",
                disco::catalog::TypeRef::String,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "salary",
                disco::catalog::TypeRef::Int,
            )),
    )
    .unwrap();
    for (i, rows) in sources.iter().enumerate() {
        let mut table = Table::new(format!("person{i}"), ["name", "salary"]);
        for row in rows {
            table
                .insert_values([
                    ("name", Value::from(row.name.clone())),
                    ("salary", Value::Int(row.salary)),
                ])
                .unwrap();
        }
        m.add_relational_source(
            &format!("person{i}"),
            "Person",
            &format!("r{i}"),
            table,
            NetworkProfile::fast(),
            caps.clone(),
        )
        .unwrap();
    }
    m
}

/// The reference answer computed naively in memory.
fn reference_answer(sources: &[Vec<PersonRow>], threshold: i64) -> Vec<String> {
    let mut names: Vec<String> = sources
        .iter()
        .flatten()
        .filter(|r| r.salary > threshold)
        .map(|r| r.name.clone())
        .collect();
    names.sort();
    names
}

fn answer_names(answer: &disco::runtime::Answer) -> Vec<String> {
    let mut names: Vec<String> = answer
        .data()
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    names.sort();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mediator_answers_match_naive_evaluation(
        sources in federation_strategy(),
        threshold in 0i64..500,
    ) {
        let m = build_mediator(&sources, CapabilitySet::full());
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let answer = m.query(&query).unwrap();
        prop_assert!(answer.is_complete());
        prop_assert_eq!(answer_names(&answer), reference_answer(&sources, threshold));
    }

    #[test]
    fn answers_do_not_depend_on_wrapper_capabilities(
        sources in federation_strategy(),
        threshold in 0i64..500,
    ) {
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let full = build_mediator(&sources, CapabilitySet::full());
        let minimal = build_mediator(&sources, CapabilitySet::get_only());
        let a = full.query(&query).unwrap();
        let b = minimal.query(&query).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn partial_plus_resubmission_equals_full_answer(
        sources in federation_strategy(),
        threshold in 0i64..500,
        down_index in 0usize..4,
    ) {
        // Re-build the mediator keeping the per-source links.
        let mut m = Mediator::new("prop");
        m.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(disco::catalog::Attribute::new(
                    "name",
                    disco::catalog::TypeRef::String,
                ))
                .with_attribute(disco::catalog::Attribute::new(
                    "salary",
                    disco::catalog::TypeRef::Int,
                )),
        )
        .unwrap();
        let mut links = Vec::new();
        for (i, rows) in sources.iter().enumerate() {
            let mut table = Table::new(format!("person{i}"), ["name", "salary"]);
            for row in rows {
                table
                    .insert_values([
                        ("name", Value::from(row.name.clone())),
                        ("salary", Value::Int(row.salary)),
                    ])
                    .unwrap();
            }
            links.push(
                m.add_relational_source(
                    &format!("person{i}"),
                    "Person",
                    &format!("r{i}"),
                    table,
                    NetworkProfile::fast(),
                    CapabilitySet::full(),
                )
                .unwrap(),
            );
        }
        let query = format!("select x.name from x in person where x.salary > {threshold}");
        let full = m.query(&query).unwrap();

        let down = down_index % links.len();
        links[down].set_availability(Availability::Unavailable);
        let partial = m.query(&query).unwrap();
        // Partial data never invents values.
        for value in partial.data() {
            prop_assert!(full.data().contains(value));
        }
        links[down].set_availability(Availability::Available);
        let recovered = m.resubmit(&partial).unwrap();
        prop_assert!(recovered.is_complete());
        prop_assert_eq!(answer_names(&recovered), answer_names(&full));
    }

    #[test]
    fn aggregates_match_naive_sums(sources in federation_strategy()) {
        let m = build_mediator(&sources, CapabilitySet::full());
        let expected: i64 = sources.iter().flatten().map(|r| r.salary).sum();
        let answer = m.query("sum(select x.salary from x in person)").unwrap();
        let got = answer.data().iter().next().unwrap().as_int().unwrap();
        prop_assert_eq!(got, expected);
        let count = m.query("count(select x.name from x in person)").unwrap();
        let total: i64 = sources.iter().map(|s| s.len() as i64).sum();
        prop_assert_eq!(count.data().iter().next().unwrap().as_int().unwrap(), total);
    }
}
