//! Integration tests for the scalability claims (§1, §2): adding a data
//! source is a single extent declaration, query text never changes, the
//! catalog and plan cache track the growth, and answers keep covering the
//! enlarged federation.

use disco::core::{CapabilitySet, InterfaceDef, Mediator, NetworkProfile, Value};
use disco::source::generator;

fn water_mediator(sources: usize) -> Mediator {
    let mut m = Mediator::new("environment");
    m.define_interface(
        InterfaceDef::new("Measurement")
            .with_extent_name("measurement")
            .with_attribute(disco::catalog::Attribute::new(
                "site",
                disco::catalog::TypeRef::String,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "day",
                disco::catalog::TypeRef::Int,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "ph",
                disco::catalog::TypeRef::Float,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "turbidity",
                disco::catalog::TypeRef::Int,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "dissolved_oxygen",
                disco::catalog::TypeRef::Float,
            )),
    )
    .unwrap();
    for i in 0..sources {
        add_station(&mut m, i);
    }
    m
}

fn add_station(m: &mut Mediator, index: usize) {
    m.add_relational_source(
        &format!("measurement{index}"),
        "Measurement",
        &format!("r_station{index}"),
        generator::water_quality_table(&format!("measurement{index}"), index, 20, 17),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
}

const QUERY: &str = "count(select m.day from m in measurement where m.ph > 7.5)";

#[test]
fn the_query_text_never_changes_as_sources_are_added() {
    let mut m = water_mediator(2);
    let mut previous_count = 0i64;
    for next_station in 2..10 {
        let answer = m.query(QUERY).unwrap();
        assert!(answer.is_complete());
        assert_eq!(
            answer.stats().exec_calls,
            next_station,
            "one call per registered station"
        );
        let count = answer.data().iter().next().unwrap().as_int().unwrap();
        assert!(count >= previous_count, "coverage only grows");
        previous_count = count;
        add_station(&mut m, next_station);
    }
}

#[test]
fn registration_is_one_catalog_operation_per_source() {
    let mut m = water_mediator(0);
    for i in 0..32 {
        let before = m.catalog().stats();
        add_station(&mut m, i);
        let after = m.catalog().stats();
        assert_eq!(after.extents, before.extents + 1);
        assert_eq!(
            after.interfaces, before.interfaces,
            "no schema change needed"
        );
    }
    assert_eq!(m.catalog().stats().extents, 32);
    // Every extent is visible through the meta-extent collection.
    assert_eq!(m.catalog().meta_extents().count(), 32);
}

#[test]
fn plan_cache_is_invalidated_when_the_federation_grows() {
    let mut m = water_mediator(3);
    let a1 = m.query(QUERY).unwrap();
    let a2 = m.query(QUERY).unwrap();
    assert_eq!(a1.data(), a2.data());
    let (hits_before, _) = m.plan_cache_stats();
    assert!(
        hits_before >= 1,
        "second identical query hits the plan cache"
    );
    add_station(&mut m, 3);
    let a3 = m.query(QUERY).unwrap();
    // The new plan covers four sources.
    assert_eq!(a3.stats().exec_calls, 4);
}

#[test]
fn removing_a_source_shrinks_coverage() {
    let mut m = water_mediator(4);
    let before = m.query(QUERY).unwrap();
    assert_eq!(before.stats().exec_calls, 4);
    m.remove_extent("measurement2").unwrap();
    let after = m.query(QUERY).unwrap();
    assert_eq!(after.stats().exec_calls, 3);
    let count_before = before.data().iter().next().unwrap().as_int().unwrap();
    let count_after = after.data().iter().next().unwrap().as_int().unwrap();
    assert!(count_after <= count_before);
}

#[test]
fn large_federation_remains_queryable() {
    let m = water_mediator(64);
    let answer = m
        .query("select distinct m.site from m in measurement")
        .unwrap();
    assert!(answer.is_complete());
    assert_eq!(answer.stats().exec_calls, 64);
    assert_eq!(
        answer.data().len(),
        64,
        "each station reports a distinct site"
    );
    // Spot-check a value.
    assert!(answer.data().iter().all(|v| matches!(v, Value::Str(_))));
}

#[test]
fn views_extend_transparently_over_new_sources() {
    let mut m = water_mediator(2);
    m.define_view(
        "alkaline",
        "select struct(site: m.site, ph: m.ph) from m in measurement where m.ph > 8.0",
    )
    .unwrap();
    let before = m.query("count(select a.site from a in alkaline)").unwrap();
    add_station(&mut m, 2);
    add_station(&mut m, 3);
    let after = m.query("count(select a.site from a in alkaline)").unwrap();
    let count_before = before.data().iter().next().unwrap().as_int().unwrap();
    let count_after = after.data().iter().next().unwrap().as_int().unwrap();
    assert!(count_after >= count_before);
    assert_eq!(
        after.stats().exec_calls,
        4,
        "the view now ranges over four stations"
    );
}
