//! Integration tests for the partial-evaluation query semantics (§1.3, §4):
//! unavailable sources produce answers that are queries, and resubmission
//! after recovery converges to the full answer.

use disco::core::{Availability, CapabilitySet, InterfaceDef, Mediator, NetworkProfile, Value};
use disco::source::generator;
use std::sync::Arc;
use std::time::Duration;

/// Builds a mediator over `n` person sources of 20 rows each and returns
/// the per-source links for failure injection.
fn federation(n: usize) -> (Mediator, Vec<Arc<disco::source::SimulatedLink>>) {
    let mut m = Mediator::new("federation");
    m.define_interface(
        InterfaceDef::new("Person")
            .with_extent_name("person")
            .with_attribute(disco::catalog::Attribute::new(
                "id",
                disco::catalog::TypeRef::Int,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "name",
                disco::catalog::TypeRef::String,
            ))
            .with_attribute(disco::catalog::Attribute::new(
                "salary",
                disco::catalog::TypeRef::Int,
            )),
    )
    .unwrap();
    let mut links = Vec::new();
    for i in 0..n {
        let table = generator::person_table(&format!("person{i}"), 20, i as u64, 7);
        let link = m
            .add_relational_source(
                &format!("person{i}"),
                "Person",
                &format!("r{i}"),
                table,
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .unwrap();
        links.push(link);
    }
    (m, links)
}

const QUERY: &str = "select x.name from x in person where x.salary > 250";

#[test]
fn partial_answers_retain_data_from_every_available_source() {
    let (m, links) = federation(6);
    let full = m.query(QUERY).unwrap();
    assert!(full.is_complete());

    // Take two sources down.
    links[1].set_availability(Availability::Unavailable);
    links[4].set_availability(Availability::Unavailable);
    let partial = m.query(QUERY).unwrap();
    assert!(!partial.is_complete());
    assert_eq!(
        partial.unavailable_sources(),
        &["r1".to_owned(), "r4".to_owned()]
    );
    // Every value in the partial data also appears in the full answer.
    for value in partial.data() {
        assert!(full.data().contains(value), "{value} not in full answer");
    }
    // The partial answer misses exactly the contribution of r1 and r4.
    assert!(partial.data().len() < full.data().len() || full.data().is_empty());
    // The residual query mentions only the unavailable extents.
    let residual = partial.residual_oql().unwrap();
    assert!(residual.contains("person1"));
    assert!(residual.contains("person4"));
    assert!(!residual.contains("person0"));
}

#[test]
fn resubmission_after_recovery_equals_the_original_answer() {
    let (m, links) = federation(5);
    let full = m.query(QUERY).unwrap();

    links[2].set_availability(Availability::Unavailable);
    let partial = m.query(QUERY).unwrap();
    assert!(!partial.is_complete());

    links[2].set_availability(Availability::Available);
    let recovered = m.resubmit(&partial).unwrap();
    assert!(recovered.is_complete());
    assert_eq!(
        recovered.data(),
        full.data(),
        "resubmission converges to the full answer"
    );
}

#[test]
fn repeated_resubmission_converges_as_sources_recover_one_by_one() {
    let (m, links) = federation(4);
    let full = m.query(QUERY).unwrap();
    for link in &links {
        link.set_availability(Availability::Unavailable);
    }
    let mut answer = m.query(QUERY).unwrap();
    assert!(answer.data().is_empty());
    // Recover one source at a time, resubmitting the latest partial answer.
    for (i, link) in links.iter().enumerate() {
        link.set_availability(Availability::Available);
        answer = m.resubmit(&answer).unwrap();
        if i + 1 < links.len() {
            assert!(
                !answer.is_complete(),
                "still missing {} sources",
                links.len() - i - 1
            );
        }
    }
    assert!(answer.is_complete());
    assert_eq!(answer.data(), full.data());
}

#[test]
fn all_sources_unavailable_returns_the_whole_query_as_residual() {
    let (m, links) = federation(3);
    for link in &links {
        link.set_availability(Availability::Unavailable);
    }
    let answer = m.query(QUERY).unwrap();
    assert!(!answer.is_complete());
    assert!(answer.data().is_empty());
    assert_eq!(answer.unavailable_sources().len(), 3);
    let residual = answer.residual_oql().unwrap();
    for i in 0..3 {
        assert!(residual.contains(&format!("person{i}")));
    }
}

#[test]
fn slow_sources_past_the_deadline_become_unavailable() {
    let (mut m, links) = federation(3);
    m.set_deadline(Some(Duration::from_millis(40)));
    // r1 answers only after 300 ms of real delay.
    links[1].set_profile(
        NetworkProfile::fast()
            .with_availability(Availability::Slow { extra_ms: 300 })
            .with_real_sleep(true),
    );
    let answer = m.query(QUERY).unwrap();
    assert!(!answer.is_complete());
    assert_eq!(answer.unavailable_sources(), &["r1".to_owned()]);

    // With a generous deadline the same source is merely slow, not
    // unavailable.
    m.set_deadline(Some(Duration::from_secs(5)));
    let answer = m.query(QUERY).unwrap();
    assert!(answer.is_complete());
}

#[test]
fn partial_answers_are_valid_oql_and_reparse() {
    let (m, links) = federation(4);
    links[0].set_availability(Availability::Unavailable);
    links[3].set_availability(Availability::Unavailable);
    let partial = m.query(QUERY).unwrap();
    let text = partial.as_query_text();
    disco::oql::parse_query(&text).expect("partial answer must be valid OQL");
}

#[test]
fn aggregates_over_partially_available_federations_stay_residual() {
    let (m, links) = federation(3);
    links[1].set_availability(Availability::Unavailable);
    // A sum over all sources cannot be answered partially without changing
    // its meaning; the answer keeps an aggregate over a residual union but
    // still evaluates the available branches to data.
    let answer = m.query("sum(select x.salary from x in person)").unwrap();
    assert!(!answer.is_complete());
    let residual = answer.residual_oql().unwrap();
    assert!(residual.contains("sum("));
    assert!(residual.contains("person1"));
    // Once the source recovers, resubmission gives the exact total.
    links[1].set_availability(Availability::Available);
    let full_direct = m.query("sum(select x.salary from x in person)").unwrap();
    let recovered = m.resubmit(&answer).unwrap();
    assert_eq!(recovered.data(), full_direct.data());
}

#[test]
fn queries_touching_only_available_sources_are_unaffected() {
    let (m, links) = federation(4);
    links[3].set_availability(Availability::Unavailable);
    // person0 does not involve r3 at all.
    let answer = m
        .query("select x.name from x in person0 where x.salary > 250")
        .unwrap();
    assert!(answer.is_complete());
    assert!(answer.unavailable_sources().is_empty());
}

#[test]
fn value_level_check_mary_sam_partial_shape() {
    // The exact §1.3 example, phrased through the public API.
    let mut m = Mediator::new("intro");
    m.register_person_demo().unwrap();
    let full = m
        .query("select x.name from x in person where x.salary > 10")
        .unwrap();
    assert_eq!(
        *full.data(),
        [Value::from("Mary"), Value::from("Sam")]
            .into_iter()
            .collect()
    );
}
