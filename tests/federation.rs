//! Integration tests for the distributed architecture of Fig. 1: mediators
//! composed over mediators, the catalog component, and heterogeneous
//! source kinds (relational, CSV, document) behind one interface.

use std::sync::Arc;

use disco::catalog::CatalogComponent;
use disco::core::{
    advertise, Attribute, Availability, CapabilitySet, InterfaceDef, Mediator, MediatorWrapper,
    MetaExtent, NetworkProfile, Repository, TypeMap, TypeRef, Value,
};
use disco::source::generator;

fn hr_mediator() -> Mediator {
    let mut hr = Mediator::new("hr");
    hr.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    for i in 0..2 {
        hr.add_relational_source(
            &format!("employee{i}"),
            "Employee",
            &format!("r_hr{i}"),
            generator::employee_table(&format!("employee{i}"), 100, 5, i as u64),
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .unwrap();
    }
    hr
}

fn corp_over(hr: Arc<Mediator>) -> Mediator {
    let mut corp = Mediator::new("corp");
    corp.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    corp.register_repository(Repository::new("r_hr").with_host("hr.example.org"))
        .unwrap();
    corp.register_wrapper(Arc::new(MediatorWrapper::new("w_hr", hr)))
        .unwrap();
    corp.register_extent(
        MetaExtent::new("employee_hr", "Employee", "w_hr", "r_hr").with_map(
            TypeMap::builder()
                .relation("employee", "employee_hr")
                .build()
                .unwrap(),
        ),
    )
    .unwrap();
    corp
}

#[test]
fn two_level_hierarchy_answers_match_direct_access() {
    let hr = Arc::new(hr_mediator());
    let corp = corp_over(Arc::clone(&hr));
    let query = "select e.name from e in employee where e.salary > 850";
    let via_corp = corp.query(query).unwrap();
    let direct = hr.query(query).unwrap();
    assert_eq!(via_corp.data(), direct.data());
    assert!(via_corp.is_complete());
}

#[test]
fn counts_aggregate_across_hierarchy_and_local_sources() {
    let hr = Arc::new(hr_mediator());
    let mut corp = corp_over(Arc::clone(&hr));
    corp.add_relational_source(
        "employee_corp",
        "Employee",
        "r_corp",
        generator::employee_table("employee_corp", 40, 5, 9),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    let count = corp.query("count(select e.id from e in employee)").unwrap();
    assert_eq!(*count.data(), [Value::Int(240)].into_iter().collect());
}

#[test]
fn inner_mediator_failures_propagate_as_partial_answers() {
    // The hr mediator's own source r_hr0 fails: hr returns partial answers,
    // so corp sees the hr mediator as unavailable and produces a partial
    // answer of its own.
    let mut hr = Mediator::new("hr");
    hr.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    let link = hr
        .add_relational_source(
            "employee0",
            "Employee",
            "r_hr0",
            generator::employee_table("employee0", 50, 5, 0),
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .unwrap();
    let hr = Arc::new(hr);
    let mut corp = corp_over(Arc::clone(&hr));
    corp.add_relational_source(
        "employee_corp",
        "Employee",
        "r_corp",
        generator::employee_table("employee_corp", 30, 5, 9),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();

    link.set_availability(Availability::Unavailable);
    let answer = corp
        .query("select e.name from e in employee where e.salary > 100")
        .unwrap();
    assert!(!answer.is_complete());
    assert_eq!(answer.unavailable_sources(), &["r_hr".to_owned()]);
    assert!(
        !answer.data().is_empty(),
        "corp's own source still contributes"
    );

    // Recovery at the bottom of the hierarchy restores completeness.
    link.set_availability(Availability::Available);
    let recovered = corp.resubmit(&answer).unwrap();
    assert!(recovered.is_complete());
}

#[test]
fn catalog_component_gives_the_system_overview() {
    let hr = Arc::new(hr_mediator());
    let corp = corp_over(Arc::clone(&hr));
    let mut component = CatalogComponent::new();
    advertise(&hr, &mut component);
    advertise(&corp, &mut component);
    assert_eq!(component.len(), 2);
    assert_eq!(component.mediators_for_interface("Employee").len(), 2);
    assert!(component.mediators_for_interface("Nothing").is_empty());
    assert_eq!(component.total_extents(), 3);
    // Withdrawal removes a mediator from the overview.
    component.withdraw("hr").unwrap();
    assert_eq!(component.mediators_for_interface("Employee").len(), 1);
}

#[test]
fn heterogeneous_source_kinds_behind_one_interface() {
    let mut m = Mediator::new("het");
    m.define_interface(
        InterfaceDef::new("Measurement")
            .with_extent_name("measurement")
            .with_attribute(Attribute::new("site", TypeRef::String))
            .with_attribute(Attribute::new("day", TypeRef::Int))
            .with_attribute(Attribute::new("ph", TypeRef::Float))
            .with_attribute(Attribute::new("turbidity", TypeRef::Int))
            .with_attribute(Attribute::new("dissolved_oxygen", TypeRef::Float)),
    )
    .unwrap();
    // Relational station.
    m.add_relational_source(
        "measurement0",
        "Measurement",
        "r_station0",
        generator::water_quality_table("measurement0", 0, 10, 3),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    // Flat-file station (get-only wrapper).
    m.add_csv_source(
        "measurement1",
        "Measurement",
        "r_station1",
        "site,day,ph,turbidity,dissolved_oxygen\nloire-99,0,7.5,3,9.1\nloire-99,1,8.6,2,8.8\n",
        NetworkProfile::fast(),
    )
    .unwrap();
    let answer = m
        .query("select m.site from m in measurement where m.ph > 8.2")
        .unwrap();
    assert!(answer.is_complete());
    assert!(answer.data().contains(&Value::from("loire-99")));
    assert_eq!(answer.stats().exec_calls, 2);
}
