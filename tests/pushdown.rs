//! Integration tests for capability-driven query processing (§1.4, §3.2):
//! the optimizer pushes work onto wrappers exactly when their advertised
//! capabilities allow it, answers are identical either way, and pushing
//! reduces the data transferred from sources.

use disco::algebra::{CapabilityGrammar, CapabilitySet, LogicalExpr, OperatorKind};
use disco::core::{Attribute, InterfaceDef, Mediator, NetworkProfile, TypeRef};
use disco::source::generator;

const ROWS_PER_SOURCE: usize = 200;

fn mediator_with_capabilities(caps: CapabilitySet) -> Mediator {
    let mut m = Mediator::new("caps");
    m.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    for i in 0..2 {
        m.add_relational_source(
            &format!("employee{i}"),
            "Employee",
            &format!("r{i}"),
            generator::employee_table(&format!("employee{i}"), ROWS_PER_SOURCE, 8, i as u64),
            NetworkProfile::fast(),
            caps.clone(),
        )
        .unwrap();
    }
    m
}

const SELECTIVE_QUERY: &str = "select e.name from e in employee where e.salary > 880";

#[test]
fn answers_are_identical_regardless_of_wrapper_power() {
    let full = mediator_with_capabilities(CapabilitySet::full());
    let minimal = mediator_with_capabilities(CapabilitySet::get_only());
    let a = full.query(SELECTIVE_QUERY).unwrap();
    let b = minimal.query(SELECTIVE_QUERY).unwrap();
    assert_eq!(
        a.data(),
        b.data(),
        "semantics must not depend on capabilities"
    );
    assert!(a.is_complete() && b.is_complete());
}

#[test]
fn pushdown_transfers_fewer_rows_than_get_only() {
    let full = mediator_with_capabilities(CapabilitySet::full());
    let minimal = mediator_with_capabilities(CapabilitySet::get_only());
    let pushed = full.query(SELECTIVE_QUERY).unwrap();
    let shipped_everything = minimal.query(SELECTIVE_QUERY).unwrap();
    assert!(
        pushed.stats().rows_transferred < shipped_everything.stats().rows_transferred,
        "pushdown {} rows vs full fetch {} rows",
        pushed.stats().rows_transferred,
        shipped_everything.stats().rows_transferred
    );
    assert_eq!(
        shipped_everything.stats().rows_transferred,
        2 * ROWS_PER_SOURCE,
        "a get-only wrapper must ship whole collections"
    );
}

#[test]
fn plan_shapes_reflect_capabilities() {
    let full = mediator_with_capabilities(CapabilitySet::full());
    let minimal = mediator_with_capabilities(CapabilitySet::get_only());
    let pushed_plan = full.explain(SELECTIVE_QUERY).unwrap();
    let minimal_plan = minimal.explain(SELECTIVE_QUERY).unwrap();
    let pushed_text = pushed_plan.logical.to_string();
    let minimal_text = minimal_plan.logical.to_string();
    // Full wrappers receive select/project inside the submit…
    assert!(
        pushed_text.contains("submit(r0, project(") || pushed_text.contains("submit(r0, select("),
        "expected pushdown in: {pushed_text}"
    );
    // …get-only wrappers receive exactly `get(extent)`.
    assert!(
        minimal_text.contains("submit(r0, get(employee0))"),
        "expected bare get in: {minimal_text}"
    );
    assert!(pushed_plan.alternatives.len() >= 2);
}

#[test]
fn mixed_capability_federation_pushes_per_source() {
    let mut m = Mediator::new("mixed");
    m.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )
    .unwrap();
    m.add_relational_source(
        "employee0",
        "Employee",
        "r0",
        generator::employee_table("employee0", ROWS_PER_SOURCE, 8, 0),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )
    .unwrap();
    m.add_relational_source(
        "employee1",
        "Employee",
        "r1",
        generator::employee_table("employee1", ROWS_PER_SOURCE, 8, 1),
        NetworkProfile::fast(),
        CapabilitySet::get_only(),
    )
    .unwrap();
    let plan = m.explain(SELECTIVE_QUERY).unwrap();
    let text = plan.logical.to_string();
    assert!(
        text.contains("submit(r1, get(employee1))"),
        "legacy source receives only get: {text}"
    );
    assert!(
        text.contains("submit(r0, project(") || text.contains("submit(r0, select("),
        "capable source receives pushed operators: {text}"
    );
    // The answer combines both sources and matches the all-full federation.
    let answer = m.query(SELECTIVE_QUERY).unwrap();
    let reference = mediator_with_capabilities(CapabilitySet::full())
        .query(SELECTIVE_QUERY)
        .unwrap();
    assert_eq!(answer.data(), reference.data());
}

#[test]
fn join_is_pushed_only_when_both_relations_live_in_the_same_repository() {
    // Built directly on the algebra, as the §3.2 employee/manager example.
    use disco::algebra::rules::push_join_into_submit;
    use std::collections::BTreeMap;

    let mut caps = BTreeMap::new();
    caps.insert("w0".to_owned(), CapabilitySet::full());
    let same_repo = LogicalExpr::SourceJoin {
        left: Box::new(LogicalExpr::get("employee0").submit("r0", "w0", "employee0")),
        right: Box::new(LogicalExpr::get("manager0").submit("r0", "w0", "manager0")),
        on: vec![("dept".into(), "dept".into())],
    };
    assert!(push_join_into_submit(&same_repo, &caps).is_some());
    let cross_repo = LogicalExpr::SourceJoin {
        left: Box::new(LogicalExpr::get("employee0").submit("r0", "w0", "employee0")),
        right: Box::new(LogicalExpr::get("manager1").submit("r1", "w0", "manager1")),
        on: vec![("dept".into(), "dept".into())],
    };
    assert!(
        push_join_into_submit(&cross_repo, &caps).is_none(),
        "submit has RPC semantics: semijoin-style shipping between sources is impossible"
    );
}

#[test]
fn capability_grammars_travel_as_text_between_wrapper_and_mediator() {
    // §3.2: the wrapper returns a grammar; the mediator reconstructs the
    // capability set from it and checks expressions against it.
    let advertised =
        CapabilitySet::new([OperatorKind::Get, OperatorKind::Project]).with_composition(true);
    let grammar_text = advertised.to_grammar().to_string();
    assert!(grammar_text.contains("project OPEN ATTRIBUTE COMMA s CLOSE"));
    let parsed = CapabilityGrammar::parse(&grammar_text).unwrap();
    let reconstructed = CapabilitySet::from_grammar(&parsed).unwrap();
    let pushed = LogicalExpr::get("person0").project(["name"]);
    assert!(reconstructed.accepts(&pushed).is_ok());
    let filter = LogicalExpr::get("person0").filter(disco::algebra::ScalarExpr::binary(
        disco::algebra::ScalarOp::Gt,
        disco::algebra::ScalarExpr::attr("salary"),
        disco::algebra::ScalarExpr::constant(10i64),
    ));
    assert!(reconstructed.accepts(&filter).is_err());
}

#[test]
fn document_sources_expose_restricted_selects_only() {
    let mut m = Mediator::new("docs");
    m.define_interface(
        InterfaceDef::new("Report")
            .with_extent_name("report")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("title", TypeRef::String))
            .with_attribute(Attribute::new("body", TypeRef::String))
            .with_attribute(Attribute::new("keyword", TypeRef::String)),
    )
    .unwrap();
    m.add_document_source(
        "report0",
        "Report",
        "r_doc",
        generator::document_store(60, 5),
        NetworkProfile::fast(),
    )
    .unwrap();
    // Equality on the keyword pseudo-attribute uses the native index and is
    // pushable; a range predicate on id is not and runs at the mediator.
    let keyword = m
        .query("select d.title from d in report where d.keyword = \"water\"")
        .unwrap();
    let range = m
        .query("select d.title from d in report where d.id > 40")
        .unwrap();
    assert!(keyword.is_complete() && range.is_complete());
    assert!(keyword.stats().rows_transferred <= 60);
    assert_eq!(
        range.stats().rows_transferred,
        60,
        "range predicates cannot be pushed"
    );
}
