//! The paper's motivating application (§1): an environmental federation for
//! water-quality control.
//!
//! "Multiple databases, distributed geographically, contain measurements of
//! water quality at the physical site of the database.  All of these
//! measurements have the same type."  Each monitoring site becomes one
//! extent of the single `Measurement` interface — adding a site is one
//! registration call, and every existing query transparently covers it.
//!
//! Run with: `cargo run --example water_quality`

use disco::core::{CapabilitySet, Mediator, NetworkProfile};
use disco::source::generator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mediator = Mediator::new("environment");
    mediator.load_odl(
        "interface Measurement (extent measurement) {\
             attribute String site;\
             attribute Short day;\
             attribute Float ph;\
             attribute Short turbidity;\
             attribute Float dissolved_oxygen; }",
    )?;

    // Twelve monitoring stations: ten full relational sources and two
    // flat-file (CSV) stations whose wrappers only support `get`.
    let mut links = Vec::new();
    for site in 0..10 {
        let table = generator::water_quality_table(&format!("measurement{site}"), site, 30, 42);
        let link = mediator.add_relational_source(
            &format!("measurement{site}"),
            "Measurement",
            &format!("r_site{site}"),
            table,
            NetworkProfile::default(),
            CapabilitySet::full(),
        )?;
        links.push(link);
    }
    for site in 10..12 {
        let csv = "site,day,ph,turbidity,dissolved_oxygen\n".to_owned()
            + &(0..30)
                .map(|day| {
                    format!(
                        "station-{site},{day},{:.2},{},{:.2}\n",
                        7.0 + (day % 5) as f64 * 0.1,
                        day % 20,
                        8.0
                    )
                })
                .collect::<String>();
        mediator.add_csv_source(
            &format!("measurement{site}"),
            "Measurement",
            &format!("r_site{site}"),
            &csv,
            NetworkProfile::wide_area(),
        )?;
    }
    println!(
        "federation: {} measurement sources registered",
        mediator.catalog().stats().extents
    );

    // A quality-alert view shared by every application.
    mediator.define_view(
        "alerts",
        "select struct(site: m.site, day: m.day, ph: m.ph) \
         from m in measurement where m.ph > 8.2",
    )?;

    let queries = [
        (
            "sites with alkaline readings",
            "select distinct a.site from a in alerts",
        ),
        (
            "average turbidity across the federation",
            "avg(select m.turbidity from m in measurement)",
        ),
        (
            "low-oxygen days anywhere",
            "count(select m.day from m in measurement where m.dissolved_oxygen < 5.5)",
        ),
    ];
    for (label, q) in queries {
        let answer = mediator.query(q)?;
        println!("\n{label}\n  {q}\n  => {}", answer.as_query_text());
        println!(
            "  ({} sources contacted, {} rows transferred, complete: {})",
            answer.stats().exec_calls,
            answer.stats().rows_transferred,
            answer.is_complete()
        );
    }

    // A station drops off the network: answers degrade gracefully to
    // partial answers instead of failing.
    links[3].set_availability(disco::core::Availability::Unavailable);
    let answer = mediator.query("select distinct a.site from a in alerts")?;
    println!("\nwith station 3 offline:");
    println!("  complete: {}", answer.is_complete());
    println!("  unavailable: {:?}", answer.unavailable_sources());
    if let Some(residual) = answer.residual_oql() {
        println!("  residual query to resubmit later:\n    {residual}");
    }
    Ok(())
}
