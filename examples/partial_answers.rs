//! Partial-evaluation query semantics (§1.3, §4): the answer to a query is
//! another query.
//!
//! The example walks through the exact scenario of the paper: the query
//! ranges over two person sources, `r0` does not respond, DISCO returns
//! `union(select …, bag("Sam"))`, and once `r0` recovers, resubmitting that
//! partial answer yields the answer the original query would have produced.
//!
//! Run with: `cargo run --example partial_answers`

use disco::core::{Availability, CapabilitySet, Mediator, NetworkProfile, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mediator = Mediator::new("hr");
    mediator.load_odl(
        "interface Person (extent person) { attribute String name; attribute Short salary; }",
    )?;

    let mut t0 = Table::new("person0", ["name", "salary"]);
    t0.insert_values([("name", Value::from("Mary")), ("salary", Value::Int(200))])?;
    let mut t1 = Table::new("person1", ["name", "salary"]);
    t1.insert_values([("name", Value::from("Sam")), ("salary", Value::Int(50))])?;

    let r0_link = mediator.add_relational_source(
        "person0",
        "Person",
        "r0",
        t0,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )?;
    mediator.add_relational_source(
        "person1",
        "Person",
        "r1",
        t1,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )?;

    let query = "select x.name from x in person where x.salary > 10";
    println!("query: {query}");

    println!("\n-- phase 1: every source available ----------------------------");
    let answer = mediator.query(query)?;
    println!("answer: {}", answer.as_query_text());

    println!("\n-- phase 2: r0 stops responding --------------------------------");
    r0_link.set_availability(Availability::Unavailable);
    let partial = mediator.query(query)?;
    println!("complete           : {}", partial.is_complete());
    println!(
        "data obtained      : {}",
        Value::Bag(partial.data().clone())
    );
    println!("unavailable sources: {:?}", partial.unavailable_sources());
    println!("partial answer     : {}", partial.as_query_text());
    println!(
        "residual query     : {}",
        partial.residual_oql().unwrap_or_default()
    );

    println!("\n-- phase 3: r0 recovers; resubmit the partial answer ------------");
    r0_link.set_availability(Availability::Available);
    let recovered = mediator.resubmit(&partial)?;
    println!("answer: {}", recovered.as_query_text());
    assert!(recovered.is_complete());
    assert_eq!(recovered.data().len(), 2);
    println!("\nthe resubmitted partial answer produced the original full answer");
    Ok(())
}
