//! The distributed architecture of Fig. 1: applications, mediators, a
//! catalog component, wrappers and heterogeneous data sources — including
//! wrappers of very different querying power and a mediator stacked on top
//! of another mediator.
//!
//! Run with: `cargo run --example federation`

use std::sync::Arc;

use disco::catalog::CatalogComponent;
use disco::core::{
    advertise, Attribute, CapabilitySet, InterfaceDef, Mediator, MediatorWrapper, MetaExtent,
    NetworkProfile, Repository, TypeRef,
};
use disco::source::generator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Lower mediator: "hr" integrates employee sources of mixed power.
    // ------------------------------------------------------------------
    let mut hr = Mediator::new("hr");
    hr.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )?;
    // A full SQL-like source …
    hr.add_relational_source(
        "employee0",
        "Employee",
        "r_hq",
        generator::employee_table("employee0", 300, 8, 1),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )?;
    // … and a legacy source whose wrapper can only fetch everything.
    hr.add_relational_source(
        "employee1",
        "Employee",
        "r_branch",
        generator::employee_table("employee1", 200, 8, 2),
        NetworkProfile::wide_area(),
        CapabilitySet::get_only(),
    )?;

    let query = "select e.name from e in employee where e.salary > 800";
    let plan = hr.explain(query)?;
    println!("hr mediator, query: {query}");
    println!("  chosen strategy: {}", plan.chosen_strategy());
    println!("  plan: {}", plan.logical);
    let answer = hr.query(query)?;
    println!(
        "  {} well-paid employees found across 2 sources ({} rows transferred)\n",
        answer.data().len(),
        answer.stats().rows_transferred
    );

    // ------------------------------------------------------------------
    // Upper mediator: "corp" sees the whole hr mediator as ONE source.
    // ------------------------------------------------------------------
    let hr = Arc::new(hr);
    let mut corp = Mediator::new("corp");
    corp.define_interface(
        InterfaceDef::new("Employee")
            .with_extent_name("employee")
            .with_attribute(Attribute::new("id", TypeRef::Int))
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("dept", TypeRef::Int))
            .with_attribute(Attribute::new("salary", TypeRef::Int)),
    )?;
    corp.register_repository(Repository::new("r_hr").with_host("hr.example.org"))?;
    corp.register_wrapper(Arc::new(MediatorWrapper::new("w_hr", Arc::clone(&hr))))?;
    corp.register_extent(
        MetaExtent::new("employee_hr", "Employee", "w_hr", "r_hr").with_map(
            disco::catalog::TypeMap::builder()
                .relation("employee", "employee_hr")
                .build()
                .expect("valid map"),
        ),
    )?;
    // Plus one source corp manages directly.
    corp.add_relational_source(
        "employee_corp",
        "Employee",
        "r_corp",
        generator::employee_table("employee_corp", 100, 8, 3),
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )?;

    let answer = corp.query("count(select e.id from e in employee)")?;
    println!("corp mediator counts every employee reachable through the hierarchy:");
    println!("  count = {}", answer.as_query_text());

    // ------------------------------------------------------------------
    // The catalog component (C in Fig. 1) keeps the system overview.
    // ------------------------------------------------------------------
    let mut catalog = CatalogComponent::new();
    advertise(&hr, &mut catalog);
    advertise(&corp, &mut catalog);
    println!("\ncatalog component overview:");
    for advertisement in catalog.iter() {
        println!(
            "  mediator {:10} interfaces {:?} ({} extents)",
            advertisement.mediator(),
            advertisement.interfaces(),
            advertisement.extent_count()
        );
    }
    println!(
        "  mediators answering Employee queries: {}",
        catalog.mediators_for_interface("Employee").len()
    );
    Ok(())
}
