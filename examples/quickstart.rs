//! Quickstart: the paper's introductory scenario end to end.
//!
//! Builds a mediator over two person data sources (r0 holds Mary, r1 holds
//! Sam), runs the introductory query, shows the chosen plan, then adds a
//! third source and runs the *same* query again — the paper's key
//! scalability point for the DBA: the query text never changes.
//!
//! Run with: `cargo run --example quickstart`

use disco::core::{CapabilitySet, Mediator, NetworkProfile, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mediator = Mediator::new("hr");
    mediator.register_person_demo()?;

    let query = "select x.name from x in person where x.salary > 10";
    println!("query: {query}\n");

    // Show what the optimizer decided (logical plan, strategy, estimated cost).
    let plan = mediator.explain(query)?;
    println!("chosen strategy : {}", plan.chosen_strategy());
    println!("logical plan    : {}", plan.logical);
    println!("physical plan   : {}", plan.physical);
    println!(
        "estimated cost  : {:.3} ms, {:.1} rows ({} alternatives considered)\n",
        plan.cost.time_ms,
        plan.cost.rows,
        plan.alternatives.len()
    );

    // Execute.
    let answer = mediator.query(query)?;
    println!("answer          : {}", answer.as_query_text());
    println!("complete        : {}", answer.is_complete());
    println!(
        "exec calls      : {} ({} rows transferred)\n",
        answer.stats().exec_calls,
        answer.stats().rows_transferred
    );

    // Scaling: add a third person source.  Only an extent declaration is
    // needed; the query text does not change.
    let mut t2 = Table::new("person2", ["name", "salary"]);
    t2.insert_values([("name", Value::from("Olga")), ("salary", Value::Int(320))])?;
    mediator.add_relational_source(
        "person2",
        "Person",
        "r2",
        t2,
        NetworkProfile::fast(),
        CapabilitySet::full(),
    )?;
    println!("added a third source (person2); running the SAME query again …");
    let answer = mediator.query(query)?;
    println!("answer          : {}", answer.as_query_text());
    println!(
        "catalog         : {} interfaces, {} extents, {} wrappers",
        mediator.catalog().stats().interfaces,
        mediator.catalog().stats().extents,
        mediator.catalog().stats().wrappers,
    );
    Ok(())
}
